//! Property-based tests for the core RQS abstractions.

use proptest::prelude::*;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{Adversary, ProcessId, ProcessSet, Rqs};

/// Strategy for a ProcessSet within a universe of n processes.
fn pset(n: usize) -> impl Strategy<Value = ProcessSet> {
    prop::bits::u64::between(0, n).prop_map(|b| ProcessSet::from_bits(b as u128))
}

proptest! {
    // --- ProcessSet algebra laws -------------------------------------

    #[test]
    fn union_commutative(a in pset(16), b in pset(16)) {
        prop_assert_eq!(a.union(b), b.union(a));
    }

    #[test]
    fn intersection_commutative(a in pset(16), b in pset(16)) {
        prop_assert_eq!(a.intersection(b), b.intersection(a));
    }

    #[test]
    fn union_associative(a in pset(16), b in pset(16), c in pset(16)) {
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
    }

    #[test]
    fn de_morgan(a in pset(16), b in pset(16)) {
        let n = 16;
        prop_assert_eq!(
            a.union(b).complement(n),
            a.complement(n).intersection(b.complement(n))
        );
    }

    #[test]
    fn difference_is_intersection_with_complement(a in pset(16), b in pset(16)) {
        prop_assert_eq!(a.difference(b), a.intersection(b.complement(16)));
    }

    #[test]
    fn distributivity(a in pset(16), b in pset(16), c in pset(16)) {
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
    }

    #[test]
    fn subset_antisymmetric(a in pset(16), b in pset(16)) {
        if a.is_subset_of(b) && b.is_subset_of(a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn len_inclusion_exclusion(a in pset(16), b in pset(16)) {
        prop_assert_eq!(
            a.union(b).len() + a.intersection(b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn iter_roundtrip(a in pset(20)) {
        let rebuilt: ProcessSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
    }

    #[test]
    fn insert_remove_inverse(a in pset(16), idx in 0usize..16) {
        let p = ProcessId(idx);
        let mut s = a;
        s.insert(p);
        prop_assert!(s.contains(p));
        s.remove(p);
        prop_assert!(!s.contains(p));
        prop_assert_eq!(s, a.difference(ProcessSet::singleton(p)));
    }

    // --- Adversary structure laws ------------------------------------

    #[test]
    fn threshold_downward_closed(n in 3usize..10, seed in pset(16)) {
        let k = n / 3;
        let b = Adversary::threshold(n, k);
        let set = seed.intersection(ProcessSet::universe(n));
        if b.contains(set) {
            // every subset also a member
            for p in set.iter() {
                let mut smaller = set;
                smaller.remove(p);
                prop_assert!(b.contains(smaller));
            }
        }
    }

    #[test]
    fn general_downward_closed(m1 in pset(8), m2 in pset(8), probe in pset(8)) {
        let b = Adversary::general(8, [m1, m2]).unwrap();
        if b.contains(probe) {
            for p in probe.iter() {
                let mut smaller = probe;
                smaller.remove(p);
                prop_assert!(b.contains(smaller), "closure violated at {smaller}");
            }
        }
    }

    #[test]
    fn large_implies_basic(m1 in pset(8), m2 in pset(8), probe in pset(8)) {
        let b = Adversary::general(8, [m1, m2]).unwrap();
        if b.is_large(probe) {
            prop_assert!(b.is_basic(probe), "large ⇒ basic");
        }
    }

    #[test]
    fn large_minus_element_is_basic(m1 in pset(8), m2 in pset(8), probe in pset(8)) {
        // Lemma 2: for any large T2 and any adversary element B,
        // T2 \ B is basic.
        let b = Adversary::general(8, [m1, m2]).unwrap();
        if b.is_large(probe) {
            for elem in b.maximal_elements() {
                prop_assert!(b.is_basic(probe.difference(elem)));
            }
        }
    }

    #[test]
    fn minimal_basic_subset_is_basic_and_minimal(
        m1 in pset(8), m2 in pset(8), probe in pset(8)
    ) {
        let b = Adversary::general(8, [m1, m2]).unwrap();
        if let Some(min) = b.minimal_basic_subset(probe) {
            prop_assert!(b.is_basic(min));
            prop_assert!(min.is_subset_of(probe));
            // minimality: removing any single member breaks basicness
            for p in min.iter() {
                let mut smaller = min;
                smaller.remove(p);
                prop_assert!(!b.is_basic(smaller));
            }
        } else {
            prop_assert!(b.contains(probe));
        }
    }

    // --- Threshold feasibility vs. full verification -----------------

    #[test]
    fn threshold_feasibility_equals_verification(
        n in 3usize..9,
        t_raw in 1usize..4,
        k_raw in 0usize..3,
        q_raw in 0usize..4,
        r_raw in 0usize..4,
    ) {
        let t = t_raw.min(n - 1);
        let k = k_raw.min(n);
        let q = q_raw.min(t);
        let r = q.max(r_raw.min(t));
        let cfg = ThresholdConfig::new(n, t, k).with_class1(q).with_class2(r);
        let built = cfg.build_unchecked().unwrap();
        prop_assert_eq!(
            built.verify().is_ok(),
            cfg.is_feasible(),
            "closed form disagrees with verification at {}", cfg
        );
    }

    #[test]
    fn verified_rqs_has_pairwise_basic_intersections(
        n in 4usize..9,
        k in 0usize..2,
    ) {
        let t = (n - 1) / (if k == 0 { 2 } else { 3 }).max(2);
        if n > 2 * t + k && t >= 1 {
            let cfg = ThresholdConfig::new(n, t, k);
            if let Ok(rqs) = cfg.build() {
                let adv = rqs.adversary().clone();
                for &a in rqs.quorums() {
                    for &b in rqs.quorums() {
                        prop_assert!(adv.is_basic(a.intersection(b)));
                    }
                }
            }
        }
    }

    // --- Rqs invariants -----------------------------------------------

    #[test]
    fn class1_always_subset_of_class2(
        c1 in prop::collection::vec(0usize..5, 0..3),
        c2 in prop::collection::vec(0usize..5, 0..3),
    ) {
        // Build over crash-only majorities of 5 (always Property-1-valid).
        let cfg = ThresholdConfig::classic_crash(5);
        let quorums = cfg.build().unwrap().quorums().to_vec();
        let adversary = Adversary::crash_only(5);
        if let Ok(rqs) = Rqs::new_unchecked(adversary, quorums, c1, c2) {
            let ids1 = rqs.class1_ids();
            let ids2 = rqs.class2_ids();
            for id in ids1 {
                prop_assert!(ids2.contains(&id), "QC1 ⊆ QC2 invariant");
            }
        }
    }

    #[test]
    fn best_available_class_monotone_in_faults(
        faulty_small in pset(8),
        extra in pset(8),
    ) {
        let rqs = ThresholdConfig::new(8, 2, 1)
            .with_class1(0)
            .with_class2(1)
            .build()
            .unwrap();
        let small = faulty_small.intersection(ProcessSet::universe(8));
        let big = small.union(extra.intersection(ProcessSet::universe(8)));
        let c_small = rqs.best_available_class(small);
        let c_big = rqs.best_available_class(big);
        // More faults can only weaken the best class (or kill liveness).
        match (c_small, c_big) {
            (None, Some(_)) => prop_assert!(false, "faults cannot improve availability"),
            (Some(a), Some(b)) => prop_assert!(a <= b),
            _ => {}
        }
    }
}
