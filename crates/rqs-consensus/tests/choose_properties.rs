//! Property-based tests for `choose()` — the lemmas of Appendix B.
//!
//! The central one is **Lemma 28**: `choose()` never sets the abort flag
//! when the ack quorum contains only benign acceptors. We generate random
//! *reachable benign states* (states a set of benign acceptors can
//! actually be in: prepares are per-view unique across the quorum-backed
//! updates, `UpdateQ` entries are genuine quorum ids, etc.) and assert
//! no abort; we also assert the decided-value-protection lemmas (25–27)
//! on states where a decision happened.

use proptest::prelude::*;
use rqs_consensus::choose::ChooseInput;
use rqs_consensus::types::NewViewAckBody;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{ProcessId, ProcessSet, Rqs};
use std::collections::BTreeMap;

fn byz4() -> Rqs {
    ThresholdConfig::byzantine_fast(1).build().unwrap()
}

/// A benign global state of view 0: every acceptor prepared at most one
/// value; acceptors 1-update a value only when a full quorum prepared it.
/// Returns per-acceptor ack bodies.
fn benign_state(
    rqs: &Rqs,
    prep_assignment: &[Option<u64>], // per acceptor: prepared value in view 0
) -> BTreeMap<ProcessId, NewViewAckBody> {
    let n = rqs.universe_size();
    let mut acks = BTreeMap::new();
    for i in 0..n {
        let mut body = NewViewAckBody {
            view: 1,
            ..Default::default()
        };
        if let Some(v) = prep_assignment[i] {
            body.prep = Some(v);
            body.prep_view.insert(0);
            // The acceptor 1-updates v iff some quorum all prepared v
            // (those acceptors sent update1⟨v,0⟩).
            let preparers: ProcessSet = (0..n)
                .filter(|&j| prep_assignment[j] == Some(v))
                .map(ProcessId)
                .collect();
            if let Some(&q) = rqs.quorums_within(preparers).first() {
                body.update[0] = Some(v);
                body.update_view[0].insert(0);
                body.update_q[0].entry(0).or_default().insert(q);
            }
        }
        acks.insert(ProcessId(i), body);
    }
    acks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 28: all-benign quorums never make choose() abort.
    #[test]
    fn choose_never_aborts_on_benign_quorums(
        preps in prop::collection::vec(prop::option::of(1u64..4), 4),
        default in 10u64..20,
    ) {
        let rqs = byz4();
        let all = benign_state(&rqs, &preps);
        for q in rqs.all_ids() {
            let members = rqs.quorum(q);
            let acks: BTreeMap<ProcessId, NewViewAckBody> = members
                .iter()
                .map(|p| (p, all[&p].clone()))
                .collect();
            let input = ChooseInput { rqs: &rqs, q, acks: &acks };
            let out = input.choose(default);
            prop_assert!(!out.abort, "benign quorum {members} aborted: {preps:?}");
        }
    }

    /// Lemmas 25–27 shape: if a value was decided via the class-1 rule
    /// (every member of a class-1 quorum prepared it), choose() over any
    /// benign quorum returns that value.
    #[test]
    fn choose_protects_class1_decisions(
        noise in prop::option::of(1u64..3),
        default in 10u64..20,
    ) {
        let rqs = byz4();
        // Class-1 quorum = the full universe for byzantine_fast(1): a
        // class-1 decision on 7 means everyone prepared 7; `noise` tries
        // to sneak a different value into… nothing — all must prepare 7.
        // Use the graded system instead for a proper class-1 ⊂ universe.
        let graded = ThresholdConfig::new(7, 2, 1)
            .with_class1(1)
            .with_class2(2)
            .build();
        let rqs = match graded { Ok(g) => g, Err(_) => rqs };
        let n = rqs.universe_size();
        let q1 = rqs.quorum(rqs.class1_ids()[0]);
        let mut preps: Vec<Option<u64>> = vec![None; n];
        for p in q1.iter() {
            preps[p.index()] = Some(7);
        }
        // Remaining acceptors may have prepared a noise value (a benign
        // race in the initial view).
        for p in preps.iter_mut() {
            if p.is_none() {
                *p = noise;
            }
        }
        let all = benign_state(&rqs, &preps);
        for q in rqs.all_ids() {
            let members = rqs.quorum(q);
            let acks: BTreeMap<ProcessId, NewViewAckBody> = members
                .iter()
                .map(|p| (p, all[&p].clone()))
                .collect();
            let input = ChooseInput { rqs: &rqs, q, acks: &acks };
            let out = input.choose(default);
            prop_assert!(!out.abort, "benign quorum aborted");
            prop_assert_eq!(
                out.value, 7,
                "class-1-decided value must be protected (quorum {})", members
            );
        }
    }

    /// choose() output is deterministic and always a mentioned value or
    /// the default.
    #[test]
    fn choose_returns_mentioned_or_default(
        preps in prop::collection::vec(prop::option::of(1u64..5), 4),
        default in 100u64..110,
    ) {
        let rqs = byz4();
        let all = benign_state(&rqs, &preps);
        let q = rqs.all_ids()[0];
        let members = rqs.quorum(q);
        let acks: BTreeMap<ProcessId, NewViewAckBody> = members
            .iter()
            .map(|p| (p, all[&p].clone()))
            .collect();
        let input = ChooseInput { rqs: &rqs, q, acks: &acks };
        let out1 = input.choose(default);
        let out2 = input.choose(default);
        prop_assert_eq!(out1, out2, "deterministic");
        let mentioned: Vec<u64> = members
            .iter()
            .filter_map(|p| acks[&p].prep)
            .collect();
        prop_assert!(
            out1.value == default || mentioned.contains(&out1.value),
            "value {} neither default nor mentioned {mentioned:?}", out1.value
        );
    }
}

/// A decided value via the update2 path (Cand4) outranks everything at
/// the same view.
#[test]
fn two_updated_value_protected() {
    let rqs = byz4();
    let n = rqs.universe_size();
    // Everyone prepared and fully updated value 5 in view 0.
    let mut acks = BTreeMap::new();
    for i in 0..n {
        let mut body = NewViewAckBody {
            view: 1,
            ..Default::default()
        };
        body.prep = Some(5);
        body.prep_view.insert(0);
        body.update = [Some(5), Some(5)];
        body.update_view[0].insert(0);
        body.update_view[1].insert(0);
        let q = rqs.all_ids()[0];
        body.update_q[0].entry(0).or_default().insert(q);
        body.update_q[1].entry(0).or_default().insert(q);
        acks.insert(ProcessId(i), body);
    }
    for q in rqs.all_ids() {
        let members = rqs.quorum(q);
        let subset: BTreeMap<ProcessId, NewViewAckBody> =
            members.iter().map(|p| (p, acks[&p].clone())).collect();
        let input = ChooseInput {
            rqs: &rqs,
            q,
            acks: &subset,
        };
        let out = input.choose(99);
        assert!(!out.abort);
        assert_eq!(out.value, 5);
    }
}

/// Higher-view preparations dominate lower-view updates (the `viewmax`
/// logic of Fig. 13 line 12).
#[test]
fn higher_view_dominates() {
    let rqs = byz4();
    let n = rqs.universe_size();
    let mut acks = BTreeMap::new();
    for i in 0..n {
        let mut body = NewViewAckBody {
            view: 3,
            ..Default::default()
        };
        // Old: fully updated 5 in view 0.
        body.update[1] = Some(5);
        body.update_view[1].insert(0);
        // New: prepared 8 in view 2.
        body.prep = Some(8);
        body.prep_view.insert(2);
        acks.insert(ProcessId(i), body);
    }
    let q = rqs.all_ids()[0];
    let members = rqs.quorum(q);
    let subset: BTreeMap<ProcessId, NewViewAckBody> =
        members.iter().map(|p| (p, acks[&p].clone())).collect();
    let input = ChooseInput {
        rqs: &rqs,
        q,
        acks: &subset,
    };
    let out = input.choose(99);
    assert!(!out.abort);
    assert_eq!(out.value, 8, "view 2 beats view 0");
}
