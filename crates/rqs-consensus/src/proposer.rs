//! The proposer automaton (Fig. 15 proposer side + Fig. 14 election).

use crate::acceptor::ConsensusConfig;
use crate::choose::{validate_ack, ChooseInput};
use crate::types::{
    encode_view_change, ConsensusMsg, NewViewAckBody, ProposalValue, SignedNewViewAck,
    SignedViewChange, View, INIT_VIEW,
};
use rqs_core::{ProcessId, ProcessSet, QuorumId};
use rqs_crypto::SignerId;
use rqs_obs::{Obs, TraceKind, LANE_SYS};
use rqs_sim::{Automaton, Context, NodeId, TimerToken};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// Delay before a proposer sends `sync`/`decision_pull` after proposing
/// (the paper's "wait some preset time", Fig. 15 lines 101–103).
pub const SYNC_DELAY: u64 = 12;

/// The proposer automaton.
///
/// Drive with [`Proposer::propose`] via
/// [`World::invoke`](rqs_sim::World::invoke). In the initial view the
/// proposer skips the consult phase; when later elected by a quorum of
/// `view_change`s it runs consult (`new_view` → acks → `choose()`) and
/// then the update phase.
#[derive(Debug)]
pub struct Proposer {
    cfg: ConsensusConfig,
    me: NodeId,
    value: Option<ProposalValue>,
    view: View,
    view_proof: Vec<SignedViewChange>,
    /// Quorums whose acks made `choose()` abort (provably tainted).
    faulty: BTreeSet<QuorumId>,
    /// Validated acks for the current view.
    acks: BTreeMap<ProcessId, SignedNewViewAck>,
    consult_active: bool,
    /// `view_change` signatures collected per next-view.
    view_changes: BTreeMap<View, BTreeMap<ProcessId, SignedViewChange>>,
    decision_senders: BTreeMap<ProposalValue, ProcessSet>,
    sync_timer: Option<TimerToken>,
    sync_sent: bool,
    halted: bool,
    obs: Obs,
}

impl Proposer {
    /// Creates a proposer. `me` is this proposer's own node id (needed to
    /// recognize when it is the elected leader).
    pub fn new(cfg: ConsensusConfig, me: NodeId) -> Self {
        Proposer {
            cfg,
            me,
            value: None,
            view: INIT_VIEW,
            view_proof: Vec::new(),
            faulty: BTreeSet::new(),
            acks: BTreeMap::new(),
            consult_active: false,
            view_changes: BTreeMap::new(),
            decision_senders: BTreeMap::new(),
            sync_timer: None,
            sync_sent: false,
            halted: false,
            obs: Obs::nop(),
        }
    }

    /// Installs a structured-trace observer.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The proposer's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// `true` once a decision quorum has been observed (Fig. 15 line 104).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Invokes `propose(v)` (Fig. 9 / Fig. 15 lines 1–9).
    ///
    /// # Panics
    ///
    /// Panics if this proposer already proposed a value.
    pub fn propose(&mut self, v: ProposalValue, ctx: &mut Context<ConsensusMsg>) {
        assert!(self.value.is_none(), "proposer already proposed");
        self.value = Some(v);
        self.obs.emit(
            TraceKind::OpInvoked,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_SYS,
            v,
            self.view,
        );
        if self.view == INIT_VIEW {
            // Initial view: skip the consult phase.
            self.obs.emit(
                TraceKind::RoundStarted,
                ctx.now().ticks(),
                ctx.me().0 as u64,
                LANE_SYS,
                INIT_VIEW,
                0,
            );
            ctx.broadcast(
                self.cfg.acceptors.clone(),
                ConsensusMsg::Prepare {
                    value: v,
                    view: INIT_VIEW,
                    v_proof: None,
                    quorum: None,
                },
            );
        } else {
            self.start_consult(ctx);
        }
        // Lines 101–103: after a preset delay, nudge acceptor timers and
        // pull any decision.
        if self.sync_timer.is_none() && !self.sync_sent {
            self.sync_timer = Some(ctx.set_timer(SYNC_DELAY));
        }
    }

    fn start_consult(&mut self, ctx: &mut Context<ConsensusMsg>) {
        self.acks.clear();
        self.consult_active = true;
        self.obs.emit(
            TraceKind::RoundStarted,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_SYS,
            self.view,
            1,
        );
        ctx.broadcast(
            self.cfg.acceptors.clone(),
            ConsensusMsg::NewView {
                view: self.view,
                view_proof: self.view_proof.clone(),
            },
        );
    }

    /// Fig. 15 lines 3–9: whenever a fresh non-faulty quorum of valid acks
    /// is available, run `choose()`; abort marks the quorum faulty and
    /// waits for another.
    fn try_choose_and_prepare(&mut self, ctx: &mut Context<ConsensusMsg>) {
        if !self.consult_active {
            return;
        }
        let acked: ProcessSet = self.acks.keys().copied().collect();
        let quorums = self.cfg.rqs.quorums_within(acked);
        for q in quorums {
            if self.faulty.contains(&q) {
                continue;
            }
            let bodies: BTreeMap<ProcessId, NewViewAckBody> = self
                .cfg
                .rqs
                .quorum(q)
                .iter()
                .map(|p| (p, self.acks[&p].body.clone()))
                .collect();
            let input = ChooseInput {
                rqs: &self.cfg.rqs,
                q,
                acks: &bodies,
            };
            let out = input.choose(self.value.expect("proposed"));
            if out.abort {
                self.faulty.insert(q);
                continue;
            }
            // Line 9: prepare with the chosen value and the ack proof.
            let proof: Vec<SignedNewViewAck> = self
                .cfg
                .rqs
                .quorum(q)
                .iter()
                .map(|p| self.acks[&p].clone())
                .collect();
            self.consult_active = false;
            self.obs.emit(
                TraceKind::QuorumAssembled,
                ctx.now().ticks(),
                ctx.me().0 as u64,
                LANE_SYS,
                self.view,
                proof.len() as u64,
            );
            ctx.broadcast(
                self.cfg.acceptors.clone(),
                ConsensusMsg::Prepare {
                    value: out.value,
                    view: self.view,
                    v_proof: Some(proof),
                    quorum: Some(q),
                },
            );
            return;
        }
    }

    fn on_view_change(&mut self, svc: SignedViewChange, ctx: &mut Context<ConsensusMsg>) {
        if self.halted {
            return;
        }
        // Verify the signature before counting.
        if !self.cfg.registry.verify(
            SignerId(svc.acceptor.0),
            &encode_view_change(svc.next_view),
            &svc.sig,
        ) {
            return;
        }
        // Only views this proposer would lead matter.
        if self.cfg.leader_of(svc.next_view) != self.me {
            return;
        }
        let entry = self.view_changes.entry(svc.next_view).or_default();
        entry.insert(svc.acceptor, svc);
        let signers: ProcessSet = entry.keys().copied().collect();
        if svc.next_view > self.view && self.cfg.rqs.any_quorum_within(signers) {
            // Fig. 14 lines 10–13: elected.
            self.view_proof = entry.values().cloned().collect();
            self.view = svc.next_view;
            self.faulty.clear();
            if self.value.is_some() {
                self.start_consult(ctx);
            }
            // A proposer that never had a value proposes nothing; the
            // harness assigns values to all proposers up front.
        }
    }

    fn on_decision(&mut self, sender: ProcessId, value: ProposalValue) {
        let senders = self.decision_senders.entry(value).or_default();
        senders.insert(sender);
        if self.cfg.rqs.any_quorum_within(*senders) {
            self.halted = true; // Fig. 15 line 104
        }
    }
}

impl Automaton<ConsensusMsg> for Proposer {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a(
            format!(
                "{:?},{:?},{:?},{:?},{:?},{:?},{:?}",
                self.value,
                self.view,
                self.faulty,
                self.consult_active,
                self.decision_senders,
                self.sync_sent,
                self.halted,
            )
            .as_bytes(),
        )
    }

    fn on_message(&mut self, from: NodeId, msg: ConsensusMsg, ctx: &mut Context<ConsensusMsg>) {
        match msg {
            ConsensusMsg::ViewChange(svc)
                if self.cfg.acceptor_index(from) == Some(svc.acceptor) =>
            {
                self.on_view_change(svc, ctx);
            }
            ConsensusMsg::NewViewAck(ack) => {
                if self.halted || !self.consult_active {
                    return;
                }
                if self.cfg.acceptor_index(from) != Some(ack.acceptor) {
                    return;
                }
                if ack.body.view != self.view {
                    return;
                }
                if !validate_ack(&self.cfg.rqs, &self.cfg.registry, &ack) {
                    return;
                }
                self.acks.insert(ack.acceptor, ack);
                self.try_choose_and_prepare(ctx);
            }
            ConsensusMsg::Decision { value } => {
                if let Some(sender) = self.cfg.acceptor_index(from) {
                    self.on_decision(sender, value);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<ConsensusMsg>) {
        if self.sync_timer == Some(timer) {
            self.sync_timer = None;
            if !self.halted && !self.sync_sent {
                self.sync_sent = true;
                ctx.broadcast(self.cfg.acceptors.clone(), ConsensusMsg::Sync);
                ctx.broadcast(self.cfg.acceptors.clone(), ConsensusMsg::DecisionPull);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;
    use rqs_core::Rqs;
    use rqs_crypto::KeyRegistry;
    use rqs_sim::Time;
    use std::sync::Arc;

    fn config() -> ConsensusConfig {
        let rqs: Arc<Rqs> = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        ConsensusConfig {
            rqs,
            registry: KeyRegistry::new(4, 11),
            acceptors: (0..4).map(NodeId).collect(),
            proposers: vec![NodeId(4), NodeId(5)],
            learners: vec![NodeId(6)],
        }
    }

    fn ctx(at: u64) -> Context<ConsensusMsg> {
        Context::new(NodeId(4), Time(at), 0)
    }

    #[test]
    fn initial_view_proposal_sends_prepare() {
        let cfg = config();
        let mut p = Proposer::new(cfg, NodeId(4));
        let mut c = ctx(0);
        p.propose(7, &mut c);
        let prepares: Vec<_> = c
            .sent()
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    ConsensusMsg::Prepare {
                        view: 0,
                        value: 7,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(prepares.len(), 4);
        assert_eq!(c.armed_timers().len(), 1, "sync timer armed");
    }

    #[test]
    #[should_panic(expected = "already proposed")]
    fn double_propose_rejected() {
        let cfg = config();
        let mut p = Proposer::new(cfg, NodeId(4));
        let mut c = ctx(0);
        p.propose(7, &mut c);
        p.propose(8, &mut c);
    }

    #[test]
    fn election_by_view_change_quorum() {
        let cfg = config();
        // proposers[1] = NodeId(5) leads view 1.
        let mut p = Proposer::new(cfg.clone(), NodeId(5));
        let mut c = ctx(0);
        p.propose(9, &mut c); // proposes in view 0 first
        for i in 0..3 {
            let svc = SignedViewChange {
                acceptor: ProcessId(i),
                next_view: 1,
                sig: cfg
                    .registry
                    .signer(SignerId(i))
                    .sign(&encode_view_change(1)),
            };
            let mut ci = ctx(10);
            p.on_message(NodeId(i), ConsensusMsg::ViewChange(svc), &mut ci);
            if i == 2 {
                // Quorum of 3 view-changes elects: new_view broadcast.
                let nv: Vec<_> = ci
                    .sent()
                    .iter()
                    .filter(|(_, m)| matches!(m, ConsensusMsg::NewView { view: 1, .. }))
                    .collect();
                assert_eq!(nv.len(), 4);
            }
        }
        assert_eq!(p.view(), 1);
    }

    #[test]
    fn forged_view_change_ignored() {
        let cfg = config();
        let mut p = Proposer::new(cfg.clone(), NodeId(5));
        let mut c = ctx(0);
        p.propose(9, &mut c);
        for i in 0..3 {
            let svc = SignedViewChange {
                acceptor: ProcessId(i),
                next_view: 1,
                // signed over the wrong view
                sig: cfg
                    .registry
                    .signer(SignerId(i))
                    .sign(&encode_view_change(9)),
            };
            let mut ci = ctx(10);
            p.on_message(NodeId(i), ConsensusMsg::ViewChange(svc), &mut ci);
        }
        assert_eq!(p.view(), 0, "forged signatures must not elect");
    }

    #[test]
    fn decision_quorum_halts() {
        let cfg = config();
        let mut p = Proposer::new(cfg, NodeId(4));
        for i in 0..3 {
            let mut c = ctx(5);
            p.on_message(NodeId(i), ConsensusMsg::Decision { value: 7 }, &mut c);
        }
        assert!(p.halted());
    }

    #[test]
    fn sync_timer_broadcasts_once() {
        let cfg = config();
        let mut p = Proposer::new(cfg, NodeId(4));
        let mut c = ctx(0);
        p.propose(7, &mut c);
        let (_, token) = c.armed_timers()[0];
        let mut c2 = ctx(SYNC_DELAY);
        p.on_timer(token, &mut c2);
        let syncs = c2
            .sent()
            .iter()
            .filter(|(_, m)| matches!(m, ConsensusMsg::Sync))
            .count();
        let pulls = c2
            .sent()
            .iter()
            .filter(|(_, m)| matches!(m, ConsensusMsg::DecisionPull))
            .count();
        assert_eq!((syncs, pulls), (4, 4));
    }
}
