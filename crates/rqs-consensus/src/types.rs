//! Message and proof types of the consensus algorithm (Figs. 10–15).
//!
//! Authenticated messages (`⟨m⟩_σx`) carry [`rqs_crypto::Signature`] tags
//! over canonical byte encodings defined here. Signatures appear **only**
//! on the view-change path (`view_change`, `new_view_ack`, `sign_ack`),
//! never in best-case executions — exactly as in the paper.

use core::fmt;
use rqs_core::{ProcessId, QuorumId};
use rqs_crypto::Signature;
use std::collections::{BTreeMap, BTreeSet};

/// A proposal value. The paper's domain `D`; we use integers.
pub type ProposalValue = u64;

/// A view number; `0` is the initial view in which every proposer may
/// propose directly.
pub type View = u64;

/// The initial view.
pub const INIT_VIEW: View = 0;

/// An update step (1 or 2) as stored in acceptor state; step 3 exists only
/// as a message.
pub type Step = usize;

/// A signed `view_change⟨next_view⟩` message (Fig. 14 line 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SignedViewChange {
    /// The signing acceptor.
    pub acceptor: ProcessId,
    /// The view being promoted.
    pub next_view: View,
    /// Signature over [`encode_view_change`].
    pub sig: Signature,
}

/// Canonical bytes of a `view_change⟨next_view⟩` message.
pub fn encode_view_change(next_view: View) -> Vec<u8> {
    let mut out = b"vc:".to_vec();
    out.extend_from_slice(&next_view.to_be_bytes());
    out
}

/// A signed echo of an `update_step⟨v, w⟩` message (a `sign_ack`,
/// Fig. 12 line 29).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SignedUpdate {
    /// The signing acceptor.
    pub acceptor: ProcessId,
    /// Which update step the echo vouches for.
    pub step: Step,
    /// The updated value.
    pub value: ProposalValue,
    /// The view of the update.
    pub view: View,
    /// Signature over [`encode_update`].
    pub sig: Signature,
}

/// Canonical bytes of an `update_step⟨v, w⟩` message for signing.
pub fn encode_update(step: Step, value: ProposalValue, view: View) -> Vec<u8> {
    let mut out = b"up:".to_vec();
    out.push(step as u8);
    out.extend_from_slice(&value.to_be_bytes());
    out.extend_from_slice(&view.to_be_bytes());
    out
}

/// The body of a `new_view_ack` (Fig. 12 line 28): the acceptor's
/// prepared/updated state, with signature sets vouching for the updates.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NewViewAckBody {
    /// The view this ack answers.
    pub view: View,
    /// `Prep` — the last prepared value.
    pub prep: Option<ProposalValue>,
    /// `Prepview` — views in which `prep` was prepared.
    pub prep_view: BTreeSet<View>,
    /// `Update[1..2]` — last 1-updated / 2-updated values (index 0 =
    /// step 1).
    pub update: [Option<ProposalValue>; 2],
    /// `Updateview[1..2]`.
    pub update_view: [BTreeSet<View>; 2],
    /// `Updateproof[step, w]` — signed `update_step` echoes from a basic
    /// subset (index 0 = step 1).
    pub update_proof: [BTreeMap<View, Vec<SignedUpdate>>; 2],
    /// `UpdateQ[step, w]` — quorum ids over which the updates happened.
    pub update_q: [BTreeMap<View, BTreeSet<QuorumId>>; 2],
}

/// Canonical bytes of a `new_view_ack` body for signing.
pub fn encode_new_view_ack(body: &NewViewAckBody) -> Vec<u8> {
    let mut out = b"nva:".to_vec();
    out.extend_from_slice(&body.view.to_be_bytes());
    match body.prep {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_be_bytes());
        }
        None => out.push(0),
    }
    for w in &body.prep_view {
        out.extend_from_slice(&w.to_be_bytes());
    }
    for s in 0..2 {
        out.push(b'u');
        match body.update[s] {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_be_bytes());
            }
            None => out.push(0),
        }
        for w in &body.update_view[s] {
            out.extend_from_slice(&w.to_be_bytes());
        }
        for (w, proofs) in &body.update_proof[s] {
            out.extend_from_slice(&w.to_be_bytes());
            for p in proofs {
                out.extend_from_slice(&(p.acceptor.0 as u64).to_be_bytes());
                out.extend_from_slice(p.sig.to_string().as_bytes());
            }
        }
        for (w, qs) in &body.update_q[s] {
            out.extend_from_slice(&w.to_be_bytes());
            for q in qs {
                out.extend_from_slice(&(q.0 as u64).to_be_bytes());
            }
        }
    }
    out
}

/// A signed `new_view_ack`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedNewViewAck {
    /// The signing acceptor.
    pub acceptor: ProcessId,
    /// The ack body.
    pub body: NewViewAckBody,
    /// Signature over [`encode_new_view_ack`].
    pub sig: Signature,
}

/// The `vProof` a proposer attaches to a `prepare` outside the initial
/// view: signed `new_view_ack`s from every member of a quorum `Q`.
pub type VProof = Vec<SignedNewViewAck>;

/// The `viewProof` attached to a `new_view`: signed `view_change`s from a
/// quorum.
pub type ViewProof = Vec<SignedViewChange>;

/// Messages of the consensus protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConsensusMsg {
    /// `prepare⟨v, view, vProof, Q⟩` (Fig. 10 line 9). `v_proof`/`quorum`
    /// are `None` in the initial view.
    Prepare {
        /// Proposed value.
        value: ProposalValue,
        /// View.
        view: View,
        /// Signed acks certifying the value (non-initial views).
        v_proof: Option<VProof>,
        /// The quorum the acks came from.
        quorum: Option<QuorumId>,
    },
    /// `update_step⟨v, view, Q⟩` (Fig. 10 lines 33/38). `quorum` is `None`
    /// for step 1, the echoed sender-quorum for steps 2 and 3.
    Update {
        /// Step 1, 2 or 3.
        step: usize,
        /// Value.
        value: ProposalValue,
        /// View.
        view: View,
        /// Sender-quorum id carried by steps 2–3.
        quorum: Option<QuorumId>,
    },
    /// `new_view⟨view, viewProof⟩` (Fig. 12 line 2).
    NewView {
        /// The new view.
        view: View,
        /// Quorum of signed `view_change`s.
        view_proof: ViewProof,
    },
    /// Signed `new_view_ack` (Fig. 12 line 28).
    NewViewAck(SignedNewViewAck),
    /// `sign_req⟨v, w, step⟩` (Fig. 12 line 24).
    SignReq {
        /// The value whose update needs vouching.
        value: ProposalValue,
        /// The view of the update.
        view: View,
        /// The update step.
        step: usize,
    },
    /// `sign_ack⟨m⟩σ` (Fig. 12 line 29).
    SignAck(SignedUpdate),
    /// Signed `view_change⟨next_view⟩` (Fig. 14 line 4).
    ViewChange(SignedViewChange),
    /// `decision⟨v⟩` (Fig. 14 line 7 / Fig. 15 line 40).
    Decision {
        /// The decided value.
        value: ProposalValue,
    },
    /// `decision_pull` (Fig. 15 lines 103).
    DecisionPull,
    /// `sync` (Fig. 15 line 102) — wakes acceptor suspicion timers.
    Sync,
}

impl fmt::Display for ConsensusMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusMsg::Prepare { value, view, .. } => write!(f, "prepare⟨{value},{view}⟩"),
            ConsensusMsg::Update {
                step,
                value,
                view,
                quorum,
            } => match quorum {
                Some(q) => write!(f, "update{step}⟨{value},{view},{q}⟩"),
                None => write!(f, "update{step}⟨{value},{view},∅⟩"),
            },
            ConsensusMsg::NewView { view, .. } => write!(f, "new_view⟨{view}⟩"),
            ConsensusMsg::NewViewAck(a) => write!(f, "new_view_ack⟨{}⟩", a.body.view),
            ConsensusMsg::SignReq { value, view, step } => {
                write!(f, "sign_req⟨{value},{view},{step}⟩")
            }
            ConsensusMsg::SignAck(s) => write!(f, "sign_ack⟨{},{},{}⟩", s.value, s.view, s.step),
            ConsensusMsg::ViewChange(v) => write!(f, "view_change⟨{}⟩", v.next_view),
            ConsensusMsg::Decision { value } => write!(f, "decision⟨{value}⟩"),
            ConsensusMsg::DecisionPull => write!(f, "decision_pull"),
            ConsensusMsg::Sync => write!(f, "sync"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_crypto::{KeyRegistry, SignerId};

    #[test]
    fn encodings_distinguish_inputs() {
        assert_ne!(encode_view_change(1), encode_view_change(2));
        assert_ne!(encode_update(1, 5, 3), encode_update(2, 5, 3));
        assert_ne!(encode_update(1, 5, 3), encode_update(1, 6, 3));
        assert_ne!(encode_update(1, 5, 3), encode_update(1, 5, 4));
    }

    #[test]
    fn ack_body_encoding_covers_fields() {
        let mut a = NewViewAckBody {
            view: 3,
            ..Default::default()
        };
        let base = encode_new_view_ack(&a);
        a.prep = Some(9);
        let with_prep = encode_new_view_ack(&a);
        assert_ne!(base, with_prep);
        a.update[0] = Some(4);
        a.update_view[0].insert(2);
        let with_update = encode_new_view_ack(&a);
        assert_ne!(with_prep, with_update);
        a.update_q[0].entry(2).or_default().insert(QuorumId(1));
        assert_ne!(with_update, encode_new_view_ack(&a));
    }

    #[test]
    fn signed_view_change_roundtrip() {
        let reg = KeyRegistry::new(3, 1);
        let kp = reg.signer(SignerId(2));
        let svc = SignedViewChange {
            acceptor: ProcessId(2),
            next_view: 7,
            sig: kp.sign(&encode_view_change(7)),
        };
        assert!(reg.verify(SignerId(2), &encode_view_change(7), &svc.sig));
        assert!(!reg.verify(SignerId(2), &encode_view_change(8), &svc.sig));
    }

    #[test]
    fn display_compact() {
        let m = ConsensusMsg::Update {
            step: 2,
            value: 5,
            view: 1,
            quorum: Some(QuorumId(3)),
        };
        assert_eq!(m.to_string(), "update2⟨5,1,Q3⟩");
        assert_eq!(ConsensusMsg::Sync.to_string(), "sync");
        assert_eq!(
            ConsensusMsg::Decision { value: 4 }.to_string(),
            "decision⟨4⟩"
        );
    }
}
