//! Decision tracking shared by acceptors and learners (Fig. 15 lines
//! 51–53).
//!
//! A process decides `v` upon receiving, for some view `w`:
//!
//! - the same `update1⟨v, w, ∗⟩` from every member of a **class-1** quorum
//!   (2 message delays after the propose), or
//! - the same `update2⟨v, w, Q2⟩` from every member of the **class-2**
//!   quorum `Q2` itself (3 delays), or
//! - the same `update3⟨v, w, ∗⟩` from every member of **any** quorum
//!   (4 delays).

use crate::types::{ProposalValue, View};
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tracks update senders and fires the three decision rules.
#[derive(Clone, Debug)]
pub struct DecisionTracker {
    rqs: Arc<Rqs>,
    /// `(v, w)` → senders of `update1⟨v, w, ∗⟩`.
    update1: BTreeMap<(ProposalValue, View), ProcessSet>,
    /// `(v, w, Q2)` → senders of `update2⟨v, w, Q2⟩`.
    update2: BTreeMap<(ProposalValue, View, QuorumId), ProcessSet>,
    /// `(v, w)` → senders of `update3⟨v, w, ∗⟩`.
    update3: BTreeMap<(ProposalValue, View), ProcessSet>,
    decided: Option<ProposalValue>,
}

impl DecisionTracker {
    /// New tracker over the given RQS.
    pub fn new(rqs: Arc<Rqs>) -> Self {
        DecisionTracker {
            rqs,
            update1: BTreeMap::new(),
            update2: BTreeMap::new(),
            update3: BTreeMap::new(),
            decided: None,
        }
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<ProposalValue> {
        self.decided
    }

    /// Deterministic digest of the tracker's full state, for the state
    /// fingerprints used by schedule exploration.
    pub fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a(
            format!(
                "{:?},{:?},{:?},{:?}",
                self.update1, self.update2, self.update3, self.decided
            )
            .as_bytes(),
        )
    }

    /// Forces a decision (used when a basic subset of `decision⟨v⟩`
    /// messages arrives, line 101).
    pub fn force_decide(&mut self, v: ProposalValue) {
        if self.decided.is_none() {
            self.decided = Some(v);
        }
    }

    /// Records an `update_step` message from acceptor `sender`; returns
    /// `Some(v)` the first time a decision rule fires.
    pub fn record(
        &mut self,
        step: usize,
        value: ProposalValue,
        view: View,
        quorum: Option<QuorumId>,
        sender: ProcessId,
    ) -> Option<ProposalValue> {
        if self.decided.is_some() {
            return None;
        }
        match step {
            1 => {
                let senders = self.update1.entry((value, view)).or_default();
                senders.insert(sender);
                // Class-1 quorum of identical update1s (line 51).
                let senders = *senders;
                if self
                    .rqs
                    .class1_ids()
                    .iter()
                    .any(|&q1| self.rqs.quorum(q1).is_subset_of(senders))
                {
                    self.decided = Some(value);
                }
            }
            2 => {
                let Some(q2) = quorum else {
                    return None; // malformed update2
                };
                if !self.rqs.is_class2(q2) {
                    // update2 over a non-class-2 quorum id cannot decide
                    // (line 52 requires Q2 ∈ QC2) but is still well-formed
                    // protocol traffic; nothing to track for deciding.
                    return None;
                }
                let senders = self.update2.entry((value, view, q2)).or_default();
                senders.insert(sender);
                // The echoed quorum itself must have sent it (line 52).
                if self.rqs.quorum(q2).is_subset_of(*senders) {
                    self.decided = Some(value);
                }
            }
            3 => {
                let senders = self.update3.entry((value, view)).or_default();
                senders.insert(sender);
                let senders = *senders;
                if self.rqs.any_quorum_within(senders) {
                    self.decided = Some(value);
                }
            }
            _ => {}
        }
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    fn tracker() -> (DecisionTracker, Arc<Rqs>) {
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        (DecisionTracker::new(rqs.clone()), rqs)
    }

    #[test]
    fn class1_update1_decides() {
        let (mut t, _rqs) = tracker();
        for i in 0..3 {
            assert_eq!(t.record(1, 7, 0, None, ProcessId(i)), None);
        }
        // 4th sender completes the class-1 (full) quorum.
        assert_eq!(t.record(1, 7, 0, None, ProcessId(3)), Some(7));
        assert_eq!(t.decided(), Some(7));
        // Further records are inert.
        assert_eq!(t.record(1, 9, 0, None, ProcessId(0)), None);
        assert_eq!(t.decided(), Some(7));
    }

    #[test]
    fn class2_update2_decides() {
        let (mut t, rqs) = tracker();
        let q2 = rqs.id_of(ProcessSet::from_indices([0, 1, 2])).unwrap();
        assert!(rqs.is_class2(q2));
        for i in 0..2 {
            assert_eq!(t.record(2, 5, 1, Some(q2), ProcessId(i)), None);
        }
        assert_eq!(t.record(2, 5, 1, Some(q2), ProcessId(2)), Some(5));
    }

    #[test]
    fn update2_from_outside_echoed_quorum_insufficient() {
        let (mut t, rqs) = tracker();
        let q2 = rqs.id_of(ProcessSet::from_indices([0, 1, 2])).unwrap();
        // Senders 1, 2, 3 but the echoed quorum is {0,1,2}: member 0 is
        // missing, so no decision.
        for i in 1..4 {
            assert_eq!(t.record(2, 5, 1, Some(q2), ProcessId(i)), None);
        }
        assert_eq!(t.decided(), None);
    }

    #[test]
    fn any_quorum_update3_decides() {
        let (mut t, _rqs) = tracker();
        assert_eq!(t.record(3, 4, 2, None, ProcessId(1)), None);
        assert_eq!(t.record(3, 4, 2, None, ProcessId(2)), None);
        assert_eq!(t.record(3, 4, 2, None, ProcessId(3)), Some(4));
    }

    #[test]
    fn mixed_values_do_not_combine() {
        let (mut t, _rqs) = tracker();
        t.record(3, 4, 2, None, ProcessId(0));
        t.record(3, 5, 2, None, ProcessId(1));
        t.record(3, 4, 3, None, ProcessId(2));
        assert_eq!(t.decided(), None, "values/views must match exactly");
    }

    #[test]
    fn force_decide_is_sticky() {
        let (mut t, _rqs) = tracker();
        t.force_decide(9);
        t.force_decide(10);
        assert_eq!(t.decided(), Some(9));
    }

    #[test]
    fn malformed_update2_ignored() {
        let (mut t, _rqs) = tracker();
        assert_eq!(t.record(2, 5, 1, None, ProcessId(0)), None);
        assert_eq!(t.record(9, 5, 1, None, ProcessId(0)), None);
        assert_eq!(t.decided(), None);
    }
}
