//! The acceptor automaton (Fig. 15: Locking module + Fig. 14: Election
//! module).

use crate::choose::{validate_ack, ChooseInput};
use crate::decide::DecisionTracker;
use crate::persist::AcceptorCore;
use crate::types::{
    encode_new_view_ack, encode_update, encode_view_change, ConsensusMsg, NewViewAckBody,
    ProposalValue, SignedNewViewAck, SignedUpdate, SignedViewChange, View, INIT_VIEW,
};
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_crypto::{KeyRegistry, Keypair, SignerId};
use rqs_sim::{Automaton, Context, NodeId, TimerToken, DELTA};
use rqs_store::StoreHandle;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Initial suspicion timeout (`5Δ` in the paper, plus the discretization
/// tick).
pub const SUSPECT_TIMEOUT: u64 = 5 * DELTA + 1;

/// Static wiring of a consensus deployment, shared by all automatons.
#[derive(Clone, Debug)]
pub struct ConsensusConfig {
    /// The refined quorum system over the acceptors.
    pub rqs: Arc<Rqs>,
    /// Signature verification directory.
    pub registry: KeyRegistry,
    /// Node ids of the acceptors, universe order.
    pub acceptors: Vec<NodeId>,
    /// Node ids of the proposers; the leader of view `w` is
    /// `proposers[w % len]`.
    pub proposers: Vec<NodeId>,
    /// Node ids of the learners.
    pub learners: Vec<NodeId>,
}

impl ConsensusConfig {
    /// Index of `node` among the acceptors, if it is one.
    pub fn acceptor_index(&self, node: NodeId) -> Option<ProcessId> {
        self.acceptors
            .iter()
            .position(|&a| a == node)
            .map(ProcessId)
    }

    /// The leader of a view.
    pub fn leader_of(&self, view: View) -> NodeId {
        self.proposers[(view as usize) % self.proposers.len()]
    }

    /// All acceptor and learner nodes (the update fan-out set).
    pub fn acceptors_and_learners(&self) -> Vec<NodeId> {
        let mut v = self.acceptors.clone();
        v.extend(&self.learners);
        v
    }

    /// Verifies a `viewProof`: signed `view_change⟨view⟩` messages whose
    /// signers cover some quorum.
    pub fn view_proof_matches(&self, view: View, proof: &[SignedViewChange]) -> bool {
        let bytes = encode_view_change(view);
        let mut signers = ProcessSet::empty();
        for svc in proof {
            if svc.next_view == view
                && self
                    .registry
                    .verify(SignerId(svc.acceptor.0), &bytes, &svc.sig)
            {
                signers.insert(svc.acceptor);
            }
        }
        self.rqs.any_quorum_within(signers)
    }
}

/// Proof-gathering state while answering a `new_view` (Fig. 12 lines
/// 23–27).
#[derive(Debug)]
struct PendingAck {
    proposer: NodeId,
    needed: BTreeSet<(usize, View)>,
    collected: BTreeMap<(usize, View), Vec<SignedUpdate>>,
}

/// The acceptor automaton.
#[derive(Debug)]
pub struct Acceptor {
    cfg: ConsensusConfig,
    me: ProcessId,
    keypair: Keypair,

    // ---- Locking state (Fig. 15 initialization) ----
    view: View,
    prep: Option<ProposalValue>,
    prep_view: BTreeSet<View>,
    update: [Option<ProposalValue>; 2],
    update_view: [BTreeSet<View>; 2],
    update_q: [BTreeMap<View, BTreeSet<QuorumId>>; 2],
    update_proof: [BTreeMap<View, Vec<SignedUpdate>>; 2],
    /// Update messages this acceptor has sent (`old`).
    old: BTreeSet<(usize, ProposalValue, View)>,

    /// Senders of `update1⟨v, w⟩` / `update2⟨v, w, ∗⟩` seen so far.
    upd_senders: [BTreeMap<(ProposalValue, View), ProcessSet>; 2],

    decider: DecisionTracker,
    decision_senders: BTreeMap<ProposalValue, ProcessSet>,
    pending_ack: Option<PendingAck>,

    // ---- Election state (Fig. 14) ----
    suspect_timer: Option<TimerToken>,
    suspect_timeout: u64,
    next_view: View,
    timer_stopped: bool,

    /// Write-ahead store for the locking core (see [`AcceptorCore`]);
    /// `None` keeps the acceptor purely volatile.
    store: Option<StoreHandle>,
}

impl Acceptor {
    /// Creates acceptor `me` (a universe index) with its signing key.
    pub fn new(cfg: ConsensusConfig, me: ProcessId, keypair: Keypair) -> Self {
        let decider = DecisionTracker::new(cfg.rqs.clone());
        Acceptor {
            cfg,
            me,
            keypair,
            view: INIT_VIEW,
            prep: None,
            prep_view: BTreeSet::new(),
            update: [None, None],
            update_view: [BTreeSet::new(), BTreeSet::new()],
            update_q: [BTreeMap::new(), BTreeMap::new()],
            update_proof: [BTreeMap::new(), BTreeMap::new()],
            old: BTreeSet::new(),
            upd_senders: [BTreeMap::new(), BTreeMap::new()],
            decider,
            decision_senders: BTreeMap::new(),
            pending_ack: None,
            suspect_timer: None,
            suspect_timeout: SUSPECT_TIMEOUT,
            next_view: INIT_VIEW,
            timer_stopped: false,
            store: None,
        }
    }

    /// An acceptor journaling its locking core to `store`: every step
    /// that changes the core appends a record before any produced
    /// message leaves, so an amnesia restart cannot equivocate on
    /// promises it already signed.
    pub fn with_store(
        cfg: ConsensusConfig,
        me: ProcessId,
        keypair: Keypair,
        store: StoreHandle,
    ) -> Self {
        let mut a = Acceptor::new(cfg, me, keypair);
        a.store = Some(store);
        a
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<ProposalValue> {
        self.decider.decided()
    }

    /// The durable locking core (everything an amnesia crash must keep).
    fn core(&self) -> AcceptorCore {
        AcceptorCore {
            view: self.view,
            prep: self.prep,
            prep_view: self.prep_view.clone(),
            update: self.update,
            update_view: self.update_view.clone(),
            old: self.old.clone(),
            decided: self.decider.decided(),
        }
    }

    /// Appends a core record iff the step changed the core. Runs before
    /// the handler returns, i.e. before any buffered send is released.
    fn persist_if_changed(&mut self, before: Option<AcceptorCore>) {
        let (Some(before), Some(store)) = (before, &self.store) else {
            return;
        };
        let now = self.core();
        if now != before {
            store.append(&now.encode());
        }
    }

    /// The acceptor's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The last prepared value (test/inspection).
    pub fn prepared(&self) -> Option<ProposalValue> {
        self.prep
    }

    // ---- update phase ---------------------------------------------------

    /// Fig. 15 lines 31–33.
    fn on_prepare(
        &mut self,
        from: NodeId,
        value: ProposalValue,
        view: View,
        v_proof: Option<Vec<SignedNewViewAck>>,
        quorum: Option<QuorumId>,
        ctx: &mut Context<ConsensusMsg>,
    ) {
        // Election line 0: the first initial-view prepare starts the
        // suspicion timer.
        if view == INIT_VIEW {
            self.ensure_suspect_timer(ctx);
        }
        if view != self.view {
            return;
        }
        // "(w ∈ Prepview ⇒ w < viewaj)": not yet prepared in this view.
        if self.prep_view.contains(&self.view) {
            return;
        }
        if self.view != INIT_VIEW {
            // Leader + proof check.
            if self.cfg.leader_of(view) != from {
                return;
            }
            let (Some(proof), Some(q)) = (v_proof, quorum) else {
                return;
            };
            if !self.validate_v_proof(value, view, &proof, q) {
                return;
            }
        }
        // Prepare v in this view (line 32).
        if self.prep == Some(value) {
            self.prep_view.insert(self.view);
        } else {
            self.prep = Some(value);
            self.prep_view = BTreeSet::from([self.view]);
        }
        // Echo update1 (line 33).
        let m = ConsensusMsg::Update {
            step: 1,
            value,
            view: self.view,
            quorum: None,
        };
        self.old.insert((1, value, self.view));
        ctx.broadcast(self.cfg.acceptors_and_learners(), m);
        // A delayed quorum of update messages may already be waiting.
        self.check_updates(ctx);
    }

    /// Validates a `prepare`'s `vProof` against quorum `q` and re-runs
    /// `choose()` (the `choose()` call in Fig. 15 line 31).
    fn validate_v_proof(
        &self,
        value: ProposalValue,
        view: View,
        proof: &[SignedNewViewAck],
        q: QuorumId,
    ) -> bool {
        if q.0 >= self.cfg.rqs.len() {
            return false;
        }
        let q_set = self.cfg.rqs.quorum(q);
        let mut acks: BTreeMap<ProcessId, NewViewAckBody> = BTreeMap::new();
        for ack in proof {
            if ack.body.view != view || !validate_ack(&self.cfg.rqs, &self.cfg.registry, ack) {
                return false;
            }
            acks.insert(ack.acceptor, ack.body.clone());
        }
        if !q_set.iter().all(|p| acks.contains_key(&p)) {
            return false;
        }
        let input = ChooseInput {
            rqs: &self.cfg.rqs,
            q,
            acks: &acks,
        };
        let out = input.choose(value);
        !out.abort && out.value == value
    }

    /// Fig. 15 lines 34–38, re-evaluated whenever senders or preparation
    /// state change.
    fn check_updates(&mut self, ctx: &mut Context<ConsensusMsg>) {
        // Step 1 → update2 echoes: one per newly covered quorum id.
        if let Some(v) = self.prep {
            if self.prep_view.contains(&self.view) {
                let key = (v, self.view);
                let senders1 = self.upd_senders[0].get(&key).copied().unwrap_or_default();
                let covered = self.cfg.rqs.quorums_within(senders1);
                for q in covered {
                    let seen = self.update_q[0]
                        .get(&self.view)
                        .is_some_and(|qs| qs.contains(&q));
                    if !seen {
                        self.apply_update(1, v);
                        self.update_q[0].entry(self.view).or_default().insert(q);
                        let m = ConsensusMsg::Update {
                            step: 2,
                            value: v,
                            view: self.view,
                            quorum: Some(q),
                        };
                        self.old.insert((2, v, self.view));
                        ctx.broadcast(self.cfg.acceptors_and_learners(), m);
                    }
                }
                // Step 2 → one update3 echo per view.
                let senders2 = self.upd_senders[1].get(&key).copied().unwrap_or_default();
                let empty = self.update_q[1]
                    .get(&self.view)
                    .is_none_or(|qs| qs.is_empty());
                if empty {
                    if let Some(q) = self.cfg.rqs.quorums_within(senders2).first().copied() {
                        self.apply_update(2, v);
                        self.update_q[1].entry(self.view).or_default().insert(q);
                        let m = ConsensusMsg::Update {
                            step: 3,
                            value: v,
                            view: self.view,
                            quorum: Some(q),
                        };
                        self.old.insert((3, v, self.view));
                        ctx.broadcast(self.cfg.acceptors_and_learners(), m);
                    }
                }
            }
        }
    }

    /// Lines 34–35: adopt `v` as the step-`s` update for the current view.
    fn apply_update(&mut self, step: usize, v: ProposalValue) {
        let s = step - 1;
        if self.update[s] == Some(v) {
            self.update_view[s].insert(self.view);
        } else {
            self.update[s] = Some(v);
            self.update_view[s] = BTreeSet::from([self.view]);
            self.update_q[s].clear();
            self.update_proof[s].clear();
        }
    }

    fn on_update(
        &mut self,
        sender: ProcessId,
        step: usize,
        value: ProposalValue,
        view: View,
        quorum: Option<QuorumId>,
        ctx: &mut Context<ConsensusMsg>,
    ) {
        // Decision rules (lines 51–53) run at acceptors too.
        if let Some(v) = self.decider.record(step, value, view, quorum, sender) {
            self.on_decide(v, ctx);
        }
        if step == 1 || step == 2 {
            self.upd_senders[step - 1]
                .entry((value, view))
                .or_default()
                .insert(sender);
            if view == self.view {
                self.check_updates(ctx);
            }
        }
    }

    fn on_decide(&mut self, v: ProposalValue, ctx: &mut Context<ConsensusMsg>) {
        // Election line 7: broadcast the decision to acceptors.
        ctx.broadcast(
            self.cfg.acceptors.clone(),
            ConsensusMsg::Decision { value: v },
        );
    }

    // ---- consult phase --------------------------------------------------

    /// Fig. 15 lines 21–28.
    fn on_new_view(
        &mut self,
        from: NodeId,
        view: View,
        view_proof: Vec<SignedViewChange>,
        ctx: &mut Context<ConsensusMsg>,
    ) {
        if view <= self.view && !(view == INIT_VIEW && self.view == INIT_VIEW) {
            return;
        }
        if self.cfg.leader_of(view) != from {
            return;
        }
        if !self.cfg.view_proof_matches(view, &view_proof) {
            return;
        }
        self.view = view;
        // Gather missing update proofs (lines 23–27).
        let mut needed: BTreeSet<(usize, View)> = BTreeSet::new();
        for s in 0..2 {
            for &w in &self.update_view[s] {
                let have = self.update_proof[s].get(&w).is_some_and(|p| !p.is_empty());
                if !have {
                    needed.insert((s, w));
                }
            }
        }
        if needed.is_empty() {
            self.send_new_view_ack(from, ctx);
            return;
        }
        for &(s, w) in &needed {
            let value = self.update[s].expect("update value exists for its views");
            // Line 24: ask some quorum in UpdateQ[step, w].
            let target_quorum = self.update_q[s]
                .get(&w)
                .and_then(|qs| qs.iter().next().copied());
            let targets: Vec<NodeId> = match target_quorum {
                Some(q) => self
                    .cfg
                    .rqs
                    .quorum(q)
                    .iter()
                    .map(|p| self.cfg.acceptors[p.index()])
                    .collect(),
                // No recorded quorum (shouldn't happen for benign state):
                // ask everyone.
                None => self.cfg.acceptors.clone(),
            };
            ctx.broadcast(
                targets,
                ConsensusMsg::SignReq {
                    value,
                    view: w,
                    step: s + 1,
                },
            );
        }
        self.pending_ack = Some(PendingAck {
            proposer: from,
            needed,
            collected: BTreeMap::new(),
        });
    }

    fn send_new_view_ack(&mut self, to: NodeId, ctx: &mut Context<ConsensusMsg>) {
        let body = NewViewAckBody {
            view: self.view,
            prep: self.prep,
            prep_view: self.prep_view.clone(),
            update: self.update,
            update_view: self.update_view.clone(),
            update_proof: self.update_proof.clone(),
            update_q: self.update_q.clone(),
        };
        let sig = self.keypair.sign(&encode_new_view_ack(&body));
        ctx.send(
            to,
            ConsensusMsg::NewViewAck(SignedNewViewAck {
                acceptor: self.me,
                body,
                sig,
            }),
        );
    }

    /// Fig. 15 line 29.
    fn on_sign_req(
        &mut self,
        from: NodeId,
        value: ProposalValue,
        view: View,
        step: usize,
        ctx: &mut Context<ConsensusMsg>,
    ) {
        if self.old.contains(&(step, value, view)) {
            let sig = self.keypair.sign(&encode_update(step, value, view));
            ctx.send(
                from,
                ConsensusMsg::SignAck(SignedUpdate {
                    acceptor: self.me,
                    step,
                    value,
                    view,
                    sig,
                }),
            );
        }
    }

    fn on_sign_ack(&mut self, su: SignedUpdate, ctx: &mut Context<ConsensusMsg>) {
        let Some(pending) = &mut self.pending_ack else {
            return;
        };
        let s = su.step.wrapping_sub(1);
        if s >= 2 {
            return;
        }
        let key = (s, su.view);
        if !pending.needed.contains(&key) {
            return;
        }
        if self.update[s] != Some(su.value) || !self.update_view[s].contains(&su.view) {
            return;
        }
        if !self.cfg.registry.verify(
            SignerId(su.acceptor.0),
            &encode_update(su.step, su.value, su.view),
            &su.sig,
        ) {
            return;
        }
        let entry = pending.collected.entry(key).or_default();
        if entry.iter().any(|e| e.acceptor == su.acceptor) {
            return;
        }
        entry.push(su);
        // A basic subset of signatures completes this proof (line 26).
        let signers: ProcessSet = entry.iter().map(|e| e.acceptor).collect();
        if self.cfg.rqs.adversary().is_basic(signers) {
            let proofs = entry.clone();
            self.update_proof[s].insert(su.view, proofs);
            pending.needed.remove(&key);
            if pending.needed.is_empty() {
                let to = pending.proposer;
                self.pending_ack = None;
                self.send_new_view_ack(to, ctx);
            }
        }
    }

    // ---- election (Fig. 14) ---------------------------------------------

    fn ensure_suspect_timer(&mut self, ctx: &mut Context<ConsensusMsg>) {
        if self.suspect_timer.is_none() && !self.timer_stopped {
            self.suspect_timer = Some(ctx.set_timer(self.suspect_timeout));
        }
    }

    fn on_decision(&mut self, sender: ProcessId, value: ProposalValue) {
        let senders = self.decision_senders.entry(value).or_default();
        senders.insert(sender);
        // Line 8: a quorum of decisions stops the suspicion timer.
        if self.cfg.rqs.any_quorum_within(*senders) {
            self.timer_stopped = true;
            // Also adopt the decision for decision_pull serving.
            self.decider.force_decide(value);
        }
    }
}

impl Automaton<ConsensusMsg> for Acceptor {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a_fold(
            rqs_sim::fnv1a(
                format!(
                    "{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?}",
                    self.view,
                    self.prep,
                    self.prep_view,
                    self.update,
                    self.update_view,
                    self.update_q,
                    self.old,
                    self.upd_senders,
                    self.decision_senders,
                    self.next_view,
                    self.timer_stopped,
                )
                .as_bytes(),
            ),
            self.decider.state_digest(),
        )
    }

    fn on_message(&mut self, from: NodeId, msg: ConsensusMsg, ctx: &mut Context<ConsensusMsg>) {
        let before = self.store.as_ref().map(|_| self.core());
        match msg {
            ConsensusMsg::Prepare {
                value,
                view,
                v_proof,
                quorum,
            } => {
                self.on_prepare(from, value, view, v_proof, quorum, ctx);
            }
            ConsensusMsg::Update {
                step,
                value,
                view,
                quorum,
            } => {
                if let Some(sender) = self.cfg.acceptor_index(from) {
                    self.on_update(sender, step, value, view, quorum, ctx);
                }
            }
            ConsensusMsg::NewView { view, view_proof } => {
                self.on_new_view(from, view, view_proof, ctx);
            }
            ConsensusMsg::SignReq { value, view, step } => {
                if self.cfg.acceptor_index(from).is_some() {
                    self.on_sign_req(from, value, view, step, ctx);
                }
            }
            ConsensusMsg::SignAck(su) => {
                if self.cfg.acceptor_index(from) == Some(su.acceptor) {
                    self.on_sign_ack(su, ctx);
                }
            }
            ConsensusMsg::Decision { value } => {
                if let Some(sender) = self.cfg.acceptor_index(from) {
                    self.on_decision(sender, value);
                }
            }
            ConsensusMsg::DecisionPull => {
                // Fig. 15 line 40.
                if let Some(v) = self.decider.decided() {
                    let mut targets = self.cfg.acceptors.clone();
                    targets.push(from);
                    ctx.broadcast(targets, ConsensusMsg::Decision { value: v });
                }
            }
            ConsensusMsg::Sync => {
                self.ensure_suspect_timer(ctx);
            }
            // Acceptors never receive these:
            ConsensusMsg::NewViewAck(_) | ConsensusMsg::ViewChange(_) => {}
        }
        self.persist_if_changed(before);
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<ConsensusMsg>) {
        if self.suspect_timer != Some(timer) {
            return;
        }
        self.suspect_timer = None;
        if self.timer_stopped {
            return;
        }
        // Fig. 14 lines 1–5: exponential backoff, promote the next view.
        self.suspect_timeout *= 2;
        self.next_view = self.next_view.max(self.view) + 1;
        let leader = self.cfg.leader_of(self.next_view);
        let sig = self.keypair.sign(&encode_view_change(self.next_view));
        ctx.send(
            leader,
            ConsensusMsg::ViewChange(SignedViewChange {
                acceptor: self.me,
                next_view: self.next_view,
                sig,
            }),
        );
        self.suspect_timer = Some(ctx.set_timer(self.suspect_timeout));
    }

    fn save_state(&mut self) {
        if let Some(store) = &self.store {
            store.install_snapshot(&self.core().encode());
        }
    }

    fn restore_state(&mut self) -> usize {
        let Some(store) = self.store.clone() else {
            return 0;
        };
        store.crash();
        let rec = store.load();
        let (core, replayed) = AcceptorCore::restore(&rec);
        // Everything outside the core is volatile: proof caches and
        // sender maps are message-derived, election state restarts from
        // its initial timeout (liveness only, like a fresh boot).
        self.update_q = [BTreeMap::new(), BTreeMap::new()];
        self.update_proof = [BTreeMap::new(), BTreeMap::new()];
        self.upd_senders = [BTreeMap::new(), BTreeMap::new()];
        self.decision_senders = BTreeMap::new();
        self.decider = DecisionTracker::new(self.cfg.rqs.clone());
        self.pending_ack = None;
        self.suspect_timer = None;
        self.suspect_timeout = SUSPECT_TIMEOUT;
        self.next_view = INIT_VIEW;
        self.timer_stopped = false;
        let core = core.unwrap_or_default();
        self.view = core.view;
        self.prep = core.prep;
        self.prep_view = core.prep_view;
        self.update = core.update;
        self.update_view = core.update_view;
        self.old = core.old;
        if let Some(v) = core.decided {
            self.decider.force_decide(v);
        }
        replayed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;
    use rqs_sim::Time;

    fn config() -> ConsensusConfig {
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        ConsensusConfig {
            rqs,
            registry: KeyRegistry::new(4, 11),
            acceptors: (0..4).map(NodeId).collect(),
            proposers: vec![NodeId(4), NodeId(5)],
            learners: vec![NodeId(6)],
        }
    }

    fn acceptor(cfg: &ConsensusConfig, i: usize) -> Acceptor {
        let kp = cfg.registry.signer(SignerId(i));
        Acceptor::new(cfg.clone(), ProcessId(i), kp)
    }

    fn ctx(at: u64) -> Context<ConsensusMsg> {
        Context::new(NodeId(0), Time(at), 0)
    }

    #[test]
    fn initial_view_prepare_echoes_update1() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        let mut c = ctx(0);
        a.on_message(
            NodeId(4),
            ConsensusMsg::Prepare {
                value: 7,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c,
        );
        assert_eq!(a.prepared(), Some(7));
        // update1 to 4 acceptors + 1 learner.
        let updates: Vec<_> = c
            .sent()
            .iter()
            .filter(|(_, m)| matches!(m, ConsensusMsg::Update { step: 1, .. }))
            .collect();
        assert_eq!(updates.len(), 5);
        // Suspicion timer armed.
        assert_eq!(c.armed_timers().len(), 1);
    }

    #[test]
    fn second_prepare_same_view_ignored() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        let mut c = ctx(0);
        let prep = |v| ConsensusMsg::Prepare {
            value: v,
            view: 0,
            v_proof: None,
            quorum: None,
        };
        a.on_message(NodeId(4), prep(7), &mut c);
        let mut c2 = ctx(1);
        a.on_message(NodeId(5), prep(9), &mut c2);
        assert_eq!(a.prepared(), Some(7), "only the first prepare in a view");
        assert!(c2.sent().is_empty());
    }

    #[test]
    fn quorum_of_update1_triggers_update2_per_quorum() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        let mut c = ctx(0);
        a.on_message(
            NodeId(4),
            ConsensusMsg::Prepare {
                value: 7,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c,
        );
        // update1 from acceptors 0,1,2 (a 3-member class-2 quorum).
        for i in 0..3 {
            let mut ci = ctx(2);
            a.on_message(
                NodeId(i),
                ConsensusMsg::Update {
                    step: 1,
                    value: 7,
                    view: 0,
                    quorum: None,
                },
                &mut ci,
            );
            if i == 2 {
                let u2: Vec<_> = ci
                    .sent()
                    .iter()
                    .filter(|(_, m)| matches!(m, ConsensusMsg::Update { step: 2, .. }))
                    .collect();
                assert!(!u2.is_empty(), "covered quorum must trigger update2");
            }
        }
        // A fourth sender covers more quorums → more update2s.
        let mut c4 = ctx(3);
        a.on_message(
            NodeId(3),
            ConsensusMsg::Update {
                step: 1,
                value: 7,
                view: 0,
                quorum: None,
            },
            &mut c4,
        );
        let u2: Vec<_> = c4
            .sent()
            .iter()
            .filter(|(_, m)| matches!(m, ConsensusMsg::Update { step: 2, .. }))
            .collect();
        assert!(
            !u2.is_empty(),
            "newly covered quorums trigger more update2s"
        );
    }

    #[test]
    fn update2_quorum_triggers_single_update3() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        let mut c = ctx(0);
        a.on_message(
            NodeId(4),
            ConsensusMsg::Prepare {
                value: 7,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c,
        );
        let q = cfg.rqs.id_of(ProcessSet::from_indices([0, 1, 2])).unwrap();
        let mut total_u3 = 0;
        for i in 0..4 {
            let mut ci = ctx(3);
            a.on_message(
                NodeId(i),
                ConsensusMsg::Update {
                    step: 2,
                    value: 7,
                    view: 0,
                    quorum: Some(q),
                },
                &mut ci,
            );
            total_u3 += ci
                .sent()
                .iter()
                .filter(|(_, m)| matches!(m, ConsensusMsg::Update { step: 3, .. }))
                .count();
        }
        // One update3 per view, broadcast to 5 nodes.
        assert_eq!(total_u3, 5);
    }

    #[test]
    fn decision_quorum_stops_timer_logically() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        for i in 0..3 {
            let mut c = ctx(1);
            a.on_message(NodeId(i), ConsensusMsg::Decision { value: 5 }, &mut c);
        }
        assert!(a.timer_stopped);
        assert_eq!(a.decided(), Some(5));
    }

    #[test]
    fn decision_pull_answered_when_decided() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        // Not decided: pull ignored.
        let mut c = ctx(1);
        a.on_message(NodeId(6), ConsensusMsg::DecisionPull, &mut c);
        assert!(c.sent().is_empty());
        a.decider.force_decide(3);
        let mut c2 = ctx(2);
        a.on_message(NodeId(6), ConsensusMsg::DecisionPull, &mut c2);
        // decision to 4 acceptors + the puller.
        assert_eq!(c2.sent().len(), 5);
    }

    #[test]
    fn suspect_timer_fires_view_change_with_backoff() {
        let cfg = config();
        let mut a = acceptor(&cfg, 2);
        let mut c = ctx(0);
        a.on_message(NodeId(4), ConsensusMsg::Sync, &mut c);
        let (delay1, token) = c.armed_timers()[0];
        assert_eq!(delay1, SUSPECT_TIMEOUT);
        let mut c2 = ctx(delay1);
        a.on_timer(token, &mut c2);
        // view_change sent to the leader of view 1 = proposers[1].
        assert_eq!(c2.sent().len(), 1);
        assert_eq!(c2.sent()[0].0, NodeId(5));
        match &c2.sent()[0].1 {
            ConsensusMsg::ViewChange(svc) => {
                assert_eq!(svc.next_view, 1);
                assert_eq!(svc.acceptor, ProcessId(2));
                assert!(cfg
                    .registry
                    .verify(SignerId(2), &encode_view_change(1), &svc.sig));
            }
            other => panic!("{other:?}"),
        }
        // Backoff doubled.
        assert_eq!(c2.armed_timers()[0].0, SUSPECT_TIMEOUT * 2);
    }

    #[test]
    fn new_view_without_pending_proofs_acks_immediately() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        // Build a valid view proof for view 1 signed by a quorum.
        let proof: Vec<SignedViewChange> = (0..3)
            .map(|i| SignedViewChange {
                acceptor: ProcessId(i),
                next_view: 1,
                sig: cfg
                    .registry
                    .signer(SignerId(i))
                    .sign(&encode_view_change(1)),
            })
            .collect();
        let mut c = ctx(5);
        a.on_message(
            NodeId(5), // leader of view 1
            ConsensusMsg::NewView {
                view: 1,
                view_proof: proof,
            },
            &mut c,
        );
        assert_eq!(a.view(), 1);
        assert_eq!(c.sent().len(), 1);
        match &c.sent()[0].1 {
            ConsensusMsg::NewViewAck(ack) => {
                assert_eq!(ack.body.view, 1);
                assert!(validate_ack(&cfg.rqs, &cfg.registry, ack));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn new_view_with_bogus_proof_rejected() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        let forged: Vec<SignedViewChange> = (0..3)
            .map(|i| SignedViewChange {
                acceptor: ProcessId(i),
                next_view: 1,
                // signature over the WRONG view
                sig: cfg
                    .registry
                    .signer(SignerId(i))
                    .sign(&encode_view_change(2)),
            })
            .collect();
        let mut c = ctx(5);
        a.on_message(
            NodeId(5),
            ConsensusMsg::NewView {
                view: 1,
                view_proof: forged,
            },
            &mut c,
        );
        assert_eq!(a.view(), 0);
        assert!(c.sent().is_empty());
    }

    #[test]
    fn amnesia_restore_keeps_promises() {
        let cfg = config();
        let kp = cfg.registry.signer(SignerId(0));
        let store = StoreHandle::mem();
        let mut a = Acceptor::with_store(cfg.clone(), ProcessId(0), kp, store.clone());
        let mut c = ctx(0);
        a.on_message(
            NodeId(4),
            ConsensusMsg::Prepare {
                value: 7,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c,
        );
        let old_before = a.old.clone();
        assert!(!old_before.is_empty());
        assert!(store.stats().appends > 0, "prepare journaled before send");

        // Amnesia crash: wipe, then restore from the store alone.
        let replayed = a.restore_state();
        assert!(replayed > 0);
        assert_eq!(a.prepared(), Some(7));
        assert_eq!(a.old, old_before, "signed updates are not forgotten");

        // A conflicting prepare in the same view is still refused.
        let mut c2 = ctx(1);
        a.on_message(
            NodeId(4),
            ConsensusMsg::Prepare {
                value: 9,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c2,
        );
        assert_eq!(a.prepared(), Some(7));

        // Snapshot compaction: restore now replays zero log records.
        a.save_state();
        assert_eq!(a.restore_state(), 0);
        assert_eq!(a.prepared(), Some(7));
    }

    #[test]
    fn decided_value_survives_amnesia() {
        let cfg = config();
        let kp = cfg.registry.signer(SignerId(0));
        let store = StoreHandle::mem();
        let mut a = Acceptor::with_store(cfg, ProcessId(0), kp, store);
        for i in 0..3 {
            let mut c = ctx(1);
            a.on_message(NodeId(i), ConsensusMsg::Decision { value: 5 }, &mut c);
        }
        assert_eq!(a.decided(), Some(5));
        a.restore_state();
        assert_eq!(a.decided(), Some(5), "a decision is never retracted");
    }

    #[test]
    fn sign_req_answered_only_for_sent_updates() {
        let cfg = config();
        let mut a = acceptor(&cfg, 0);
        let mut c = ctx(0);
        a.on_message(
            NodeId(4),
            ConsensusMsg::Prepare {
                value: 7,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c,
        );
        // update1⟨7,0⟩ is in `old` now.
        let mut c2 = ctx(2);
        a.on_message(
            NodeId(1),
            ConsensusMsg::SignReq {
                value: 7,
                view: 0,
                step: 1,
            },
            &mut c2,
        );
        assert_eq!(c2.sent().len(), 1);
        match &c2.sent()[0].1 {
            ConsensusMsg::SignAck(su) => {
                assert!(cfg
                    .registry
                    .verify(SignerId(0), &encode_update(1, 7, 0), &su.sig));
            }
            other => panic!("{other:?}"),
        }
        // A never-sent update is not vouched for.
        let mut c3 = ctx(3);
        a.on_message(
            NodeId(1),
            ConsensusMsg::SignReq {
                value: 9,
                view: 0,
                step: 1,
            },
            &mut c3,
        );
        assert!(c3.sent().is_empty());
    }
}
