//! Durable core state for consensus automata.
//!
//! An amnesia-crashed acceptor must not forget what it promised: its
//! view, prepared value, adopted updates and the set of update messages
//! it has signed (`old`) are exactly the state that prevents it from
//! later equivocating. Likewise a learner must not un-learn a decided
//! value it may already have reported.
//!
//! Records are *full* core snapshots, last-writer-wins: each state
//! mutation appends one record, and recovery takes the latest decodable
//! record (snapshot first, then the log tail). The proof caches,
//! sender-tracking maps and timers are deliberately volatile — they are
//! message-derived or liveness-only and the protocol regenerates them.

use crate::types::{ProposalValue, View};
use rqs_store::codec::{Dec, Enc};
use rqs_store::Recovered;
use std::collections::BTreeSet;

/// Record-kind tag for [`AcceptorCore`] records.
pub const ACCEPTOR_KIND: u64 = 2;
/// Record-kind tag for [`LearnerCore`] records.
pub const LEARNER_KIND: u64 = 3;

fn opt(e: &mut Enc, v: Option<u64>) {
    e.u64s(v);
}

fn dec_opt(d: &mut Dec) -> Option<Option<u64>> {
    let vs = d.u64s()?;
    match vs.len() {
        0 => Some(None),
        1 => Some(Some(vs[0])),
        _ => None,
    }
}

/// The locking-module state an acceptor must carry across an amnesia
/// crash (Fig. 15 initialization, minus the regenerable proof caches).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AcceptorCore {
    /// Current view.
    pub view: View,
    /// Prepared value.
    pub prep: Option<ProposalValue>,
    /// Views in which `prep` was prepared.
    pub prep_view: BTreeSet<View>,
    /// Adopted step-1/step-2 updates.
    pub update: [Option<ProposalValue>; 2],
    /// Views of the adopted updates.
    pub update_view: [BTreeSet<View>; 2],
    /// Update messages this acceptor has sent (its signing commitments).
    pub old: BTreeSet<(usize, ProposalValue, View)>,
    /// Decided value, if any (a decision is never retracted).
    pub decided: Option<ProposalValue>,
}

impl AcceptorCore {
    /// Encodes the core as one log record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(ACCEPTOR_KIND).u64(self.view);
        opt(&mut e, self.prep);
        e.u64s(self.prep_view.iter().copied());
        for s in 0..2 {
            opt(&mut e, self.update[s]);
            e.u64s(self.update_view[s].iter().copied());
        }
        e.u64s(
            self.old
                .iter()
                .flat_map(|&(step, v, w)| [step as u64, v, w]),
        );
        opt(&mut e, self.decided);
        e.finish()
    }

    /// Decodes a record; `None` on corruption or a different kind tag.
    pub fn decode(bytes: &[u8]) -> Option<AcceptorCore> {
        let mut d = Dec::new(bytes);
        if d.u64()? != ACCEPTOR_KIND {
            return None;
        }
        let view = d.u64()?;
        let prep = dec_opt(&mut d)?;
        let prep_view = d.u64s()?.into_iter().collect();
        let mut update = [None, None];
        let mut update_view = [BTreeSet::new(), BTreeSet::new()];
        for s in 0..2 {
            update[s] = dec_opt(&mut d)?;
            update_view[s] = d.u64s()?.into_iter().collect();
        }
        let flat = d.u64s()?;
        if flat.len() % 3 != 0 {
            return None;
        }
        let old = flat
            .chunks_exact(3)
            .map(|c| (c[0] as usize, c[1], c[2]))
            .collect();
        let decided = dec_opt(&mut d)?;
        if !d.done() {
            return None;
        }
        Some(AcceptorCore {
            view,
            prep,
            prep_view,
            update,
            update_view,
            old,
            decided,
        })
    }

    /// The latest decodable core in recovered store contents, plus the
    /// number of log records scanned.
    pub fn restore(rec: &Recovered) -> (Option<AcceptorCore>, usize) {
        let mut core = rec.snapshot.as_deref().and_then(AcceptorCore::decode);
        let mut replayed = 0;
        for bytes in &rec.log {
            if let Some(c) = AcceptorCore::decode(bytes) {
                core = Some(c);
                replayed += 1;
            }
        }
        (core, replayed)
    }
}

/// The learner's durable state: the value it learned, and when.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LearnerCore {
    /// Learned value and learn time (ticks), if any.
    pub learned: Option<(ProposalValue, u64)>,
}

impl LearnerCore {
    /// Encodes the core as one log record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(LEARNER_KIND)
            .u64s(self.learned.into_iter().flat_map(|(v, t)| [v, t]));
        e.finish()
    }

    /// Decodes a record; `None` on corruption or a different kind tag.
    pub fn decode(bytes: &[u8]) -> Option<LearnerCore> {
        let mut d = Dec::new(bytes);
        if d.u64()? != LEARNER_KIND {
            return None;
        }
        let vs = d.u64s()?;
        if !d.done() {
            return None;
        }
        match vs.len() {
            0 => Some(LearnerCore { learned: None }),
            2 => Some(LearnerCore {
                learned: Some((vs[0], vs[1])),
            }),
            _ => None,
        }
    }

    /// The latest decodable core in recovered store contents, plus the
    /// number of log records scanned.
    pub fn restore(rec: &Recovered) -> (Option<LearnerCore>, usize) {
        let mut core = rec.snapshot.as_deref().and_then(LearnerCore::decode);
        let mut replayed = 0;
        for bytes in &rec.log {
            if let Some(c) = LearnerCore::decode(bytes) {
                core = Some(c);
                replayed += 1;
            }
        }
        (core, replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> AcceptorCore {
        AcceptorCore {
            view: 3,
            prep: Some(7),
            prep_view: BTreeSet::from([0, 3]),
            update: [Some(7), None],
            update_view: [BTreeSet::from([3]), BTreeSet::new()],
            old: BTreeSet::from([(1, 7, 0), (2, 7, 3)]),
            decided: None,
        }
    }

    #[test]
    fn acceptor_core_round_trips() {
        let c = core();
        assert_eq!(AcceptorCore::decode(&c.encode()), Some(c));
        let empty = AcceptorCore::default();
        assert_eq!(AcceptorCore::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn acceptor_core_rejects_corruption() {
        let enc = core().encode();
        assert_eq!(AcceptorCore::decode(&enc[..enc.len() - 1]), None);
        assert_eq!(AcceptorCore::decode(&LearnerCore::default().encode()), None);
    }

    #[test]
    fn last_writer_wins_restore() {
        let mut a = core();
        let rec = Recovered {
            snapshot: Some(a.encode()),
            log: vec![
                {
                    a.view = 4;
                    a.encode()
                },
                b"junk".to_vec(),
                {
                    a.decided = Some(7);
                    a.encode()
                },
            ],
        };
        let (restored, replayed) = AcceptorCore::restore(&rec);
        assert_eq!(replayed, 2);
        assert_eq!(restored, Some(a));
    }

    #[test]
    fn learner_core_round_trips() {
        for c in [
            LearnerCore { learned: None },
            LearnerCore {
                learned: Some((9, 17)),
            },
        ] {
            assert_eq!(LearnerCore::decode(&c.encode()), Some(c));
        }
        let (restored, replayed) = LearnerCore::restore(&Recovered {
            snapshot: None,
            log: vec![LearnerCore {
                learned: Some((1, 2)),
            }
            .encode()],
        });
        assert_eq!(replayed, 1);
        assert_eq!(restored.unwrap().learned, Some((1, 2)));
    }
}
