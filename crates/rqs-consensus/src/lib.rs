//! # RQS Byzantine consensus
//!
//! The optimally-resilient, best-case-optimal Byzantine consensus
//! algorithm of *Refined Quorum Systems* (Guerraoui & Vukolić, §4,
//! Figures 9–15) in the proposer/acceptor/learner framework:
//!
//! - tolerates **any** number of Byzantine proposers and learners, the
//!   largest possible adversary of acceptors, and unbounded asynchrony;
//! - learns in `m + 1` message delays when a correct class-`m` quorum of
//!   acceptors is available under best-case conditions (`(m, QCm)`-fast
//!   for `m ∈ {1,2,3}`: 2, 3 or 4 message delays);
//! - uses digital signatures **only** on the view-change path, never in
//!   best-case executions.
//!
//! Modules:
//!
//! - [`types`] — messages and signed proof objects;
//! - [`choose`] — the `choose()` value-selection function (Fig. 13), the
//!   safety core, as pure testable code;
//! - [`decide`] — the three decision rules (2/3/4 message delays);
//! - [`acceptor`], [`proposer`], [`learner`] — the three automatons,
//!   including the Election module (Fig. 14);
//! - [`byzantine`] — scriptable Byzantine acceptors;
//! - [`harness`] — one-call deployment measuring learning latency.
//!
//! ## Quick start
//!
//! ```
//! use rqs_core::threshold::ThresholdConfig;
//! use rqs_consensus::ConsensusHarness;
//!
//! let rqs = ThresholdConfig::byzantine_fast(1).build()?; // n = 4, t = k = 1
//! let mut consensus = ConsensusHarness::new(rqs, 2, 2);
//! consensus.propose(0, 42);
//! assert!(consensus.run_until_learned(100_000));
//! assert_eq!(consensus.agreed_value(), Some(42));
//! // Fast path: 2 message delays.
//! assert!(consensus.learner_delays().iter().all(|d| *d == Some(2)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acceptor;
pub mod byzantine;
pub mod choose;
pub mod decide;
pub mod harness;
pub mod learner;
pub mod persist;
pub mod proposer;
pub mod types;

pub use acceptor::{Acceptor, ConsensusConfig, SUSPECT_TIMEOUT};
pub use choose::{validate_ack, ChooseInput, ChooseOutcome};
pub use decide::DecisionTracker;
pub use harness::{ConsensusDeployment, ConsensusHarness};
pub use learner::{Learner, PULL_INTERVAL};
pub use persist::{AcceptorCore, LearnerCore};
pub use proposer::{Proposer, SYNC_DELAY};
pub use types::{ConsensusMsg, ProposalValue, View, INIT_VIEW};
