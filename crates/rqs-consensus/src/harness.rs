//! End-to-end consensus harness: builds a proposer/acceptor/learner
//! deployment over a refined quorum system, drives proposals and measures
//! learning latency in message delays.

use crate::acceptor::{Acceptor, ConsensusConfig};
use crate::learner::Learner;
use crate::proposer::Proposer;
use crate::types::{ConsensusMsg, ProposalValue};
use rqs_core::{ProcessId, ProcessSet, Rqs};
use rqs_crypto::{KeyRegistry, SignerId};
use rqs_sim::{Automaton, NetworkScript, NodeId, Time, World};
use std::sync::Arc;

/// A consensus deployment inside a simulation world.
///
/// # Examples
///
/// ```
/// use rqs_core::threshold::ThresholdConfig;
/// use rqs_consensus::ConsensusHarness;
///
/// // n = 3t+1 = 4 Byzantine acceptors, 2 proposers, 2 learners.
/// let rqs = ThresholdConfig::byzantine_fast(1).build()?;
/// let mut h = ConsensusHarness::new(rqs, 2, 2);
/// h.propose(0, 42);
/// assert!(h.run_until_learned(100_000));
/// // Best case: every learner learns in 2 message delays.
/// assert_eq!(h.learner_delays(), vec![Some(2), Some(2)]);
/// assert_eq!(h.agreed_value(), Some(42));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ConsensusHarness {
    world: World<ConsensusMsg>,
    cfg: ConsensusConfig,
    propose_time: Option<Time>,
    crashed_learners: Vec<usize>,
}

impl ConsensusHarness {
    /// Builds a synchronous deployment.
    pub fn new(rqs: Rqs, proposers: usize, learners: usize) -> Self {
        Self::with_script(rqs, proposers, learners, NetworkScript::synchronous())
    }

    /// Builds a deployment with a custom network script.
    pub fn with_script(
        rqs: Rqs,
        proposers: usize,
        learners: usize,
        script: NetworkScript,
    ) -> Self {
        assert!(proposers >= 1, "at least one proposer");
        assert!(learners >= 1, "at least one learner");
        let n = rqs.universe_size();
        let rqs = Arc::new(rqs);
        let registry = KeyRegistry::new(n, 0xC0FFEE);
        let acceptor_nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let proposer_nodes: Vec<NodeId> = (n..n + proposers).map(NodeId).collect();
        let learner_nodes: Vec<NodeId> =
            (n + proposers..n + proposers + learners).map(NodeId).collect();
        let cfg = ConsensusConfig {
            rqs,
            registry: registry.clone(),
            acceptors: acceptor_nodes,
            proposers: proposer_nodes,
            learners: learner_nodes,
        };
        let mut world = World::new(script);
        for i in 0..n {
            let id = world.add_node(Box::new(Acceptor::new(
                cfg.clone(),
                ProcessId(i),
                registry.signer(SignerId(i)),
            )));
            debug_assert_eq!(id, cfg.acceptors[i]);
        }
        for i in 0..proposers {
            let me = cfg.proposers[i];
            let id = world.add_node(Box::new(Proposer::new(cfg.clone(), me)));
            debug_assert_eq!(id, me);
        }
        for i in 0..learners {
            let id = world.add_node(Box::new(Learner::new(cfg.clone())));
            debug_assert_eq!(id, cfg.learners[i]);
        }
        world.start(); // arms the learners' pull timers
        ConsensusHarness {
            world,
            cfg,
            propose_time: None,
            crashed_learners: Vec::new(),
        }
    }

    /// The deployment wiring.
    pub fn config(&self) -> &ConsensusConfig {
        &self.cfg
    }

    /// The underlying world.
    pub fn world_mut(&mut self) -> &mut World<ConsensusMsg> {
        &mut self.world
    }

    /// Crashes a set of acceptors (universe indices) now.
    pub fn crash_acceptors(&mut self, faulty: ProcessSet) {
        let now = self.world.now();
        for p in faulty.iter() {
            self.world.crash_at(self.cfg.acceptors[p.index()], now);
        }
        self.world.run_before(now + 1);
    }

    /// Crashes proposer `i` at the given time (leader-failure scenarios).
    pub fn crash_proposer_at(&mut self, i: usize, at: Time) {
        self.world.crash_at(self.cfg.proposers[i], at);
    }

    /// Marks learner `i` crashed (excluded from agreement checks).
    pub fn crash_learner(&mut self, i: usize) {
        let now = self.world.now();
        self.world.crash_at(self.cfg.learners[i], now);
        self.world.run_before(now + 1);
        self.crashed_learners.push(i);
    }

    /// Replaces an acceptor with a Byzantine automaton.
    pub fn make_byzantine(&mut self, idx: usize, node: Box<dyn Automaton<ConsensusMsg>>) {
        self.world.replace_node(self.cfg.acceptors[idx], node);
    }

    /// Proposer `i` proposes `value`. The first proposal timestamps the
    /// latency measurement.
    pub fn propose(&mut self, i: usize, value: ProposalValue) {
        let node = self.cfg.proposers[i];
        if self.propose_time.is_none() {
            self.propose_time = Some(self.world.now());
        }
        self.world
            .invoke::<Proposer>(node, move |p, ctx| p.propose(value, ctx));
    }

    /// Runs until every correct learner has learned (or the step budget is
    /// exhausted); returns whether they all learned.
    pub fn run_until_learned(&mut self, max_steps: usize) -> bool {
        let learners: Vec<NodeId> = self
            .cfg
            .learners
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed_learners.contains(i))
            .map(|(_, &n)| n)
            .collect();
        self.world.run_until_bounded(
            |w| {
                learners
                    .iter()
                    .all(|&l| w.node_as::<Learner>(l).learned().is_some())
            },
            max_steps,
        )
    }

    /// Learned value of learner `i`, if any.
    pub fn learned(&self, i: usize) -> Option<ProposalValue> {
        self.world
            .node_as::<Learner>(self.cfg.learners[i])
            .learned()
            .map(|(v, _)| v)
    }

    /// Message delays from the first propose to each learner's learn time
    /// (`None` for learners that have not learned). One simulated tick is
    /// one message delay.
    pub fn learner_delays(&self) -> Vec<Option<u64>> {
        let t0 = self.propose_time.unwrap_or(Time::ZERO);
        self.cfg
            .learners
            .iter()
            .map(|&l| {
                self.world
                    .node_as::<Learner>(l)
                    .learned()
                    .map(|(_, t)| t.since(t0))
            })
            .collect()
    }

    /// The agreed value if every correct learner learned the same value;
    /// `None` if any is missing or they disagree (an Agreement violation).
    pub fn agreed_value(&self) -> Option<ProposalValue> {
        let mut agreed: Option<ProposalValue> = None;
        for (i, &l) in self.cfg.learners.iter().enumerate() {
            if self.crashed_learners.contains(&i) {
                continue;
            }
            let v = self.world.node_as::<Learner>(l).learned().map(|(v, _)| v)?;
            match agreed {
                None => agreed = Some(v),
                Some(prev) if prev != v => return None,
                _ => {}
            }
        }
        agreed
    }

    /// Decided value at acceptor `i` (inspection).
    pub fn acceptor_decided(&self, i: usize) -> Option<ProposalValue> {
        self.world
            .node_as::<Acceptor>(self.cfg.acceptors[i])
            .decided()
    }

    /// Current time.
    pub fn now(&self) -> Time {
        self.world.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    /// n = 7, t = 2, k = 1, q = 0, r = 1: three distinct latency classes.
    fn graded_rqs() -> Rqs {
        ThresholdConfig::new(7, 2, 1)
            .with_class1(0)
            .with_class2(1)
            .build()
            .unwrap()
    }

    #[test]
    fn best_case_two_delays() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        h.propose(0, 7);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.agreed_value(), Some(7));
        assert_eq!(h.learner_delays(), vec![Some(2), Some(2)]);
    }

    #[test]
    fn one_crash_three_delays() {
        let mut h = ConsensusHarness::new(graded_rqs(), 2, 2);
        h.crash_acceptors(ProcessSet::from_indices([6]));
        h.propose(0, 9);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.agreed_value(), Some(9));
        for d in h.learner_delays() {
            assert_eq!(d, Some(3), "class-2 quorum → 3 message delays");
        }
    }

    #[test]
    fn two_crashes_four_delays() {
        let mut h = ConsensusHarness::new(graded_rqs(), 2, 2);
        h.crash_acceptors(ProcessSet::from_indices([5, 6]));
        h.propose(0, 4);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.agreed_value(), Some(4));
        for d in h.learner_delays() {
            assert_eq!(d, Some(4), "class-3 quorum → 4 message delays");
        }
    }

    #[test]
    fn leader_crash_recovers_through_view_change() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 1);
        // Proposer 0 crashes immediately: its initial-view prepare never
        // arrives (crash at t0 before sending is processed).
        h.crash_proposer_at(0, Time::ZERO);
        // Proposer 1 proposes; in the initial view its prepare reaches the
        // acceptors directly (all proposers may propose in view 0).
        h.propose(1, 11);
        assert!(h.run_until_learned(400_000));
        assert_eq!(h.agreed_value(), Some(11));
    }

    #[test]
    fn contention_still_agrees() {
        // Both proposers propose different values in the initial view:
        // acceptors prepare whichever arrives first; agreement must hold
        // even if the fast path fails and a view change is needed.
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        h.propose(0, 1);
        h.propose(1, 2);
        assert!(h.run_until_learned(400_000), "contention must terminate");
        let v = h.agreed_value().expect("all learners agree");
        assert!(v == 1 || v == 2, "validity: an actually-proposed value");
    }

    #[test]
    fn slow_path_only_baseline_four_delays() {
        // Classic Byzantine quorums (QC1 = QC2 = ∅): only the update3 rule
        // can fire — the no-fast-path baseline.
        let rqs = ThresholdConfig::classic_byzantine(4).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 1, 1);
        h.propose(0, 3);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.learner_delays(), vec![Some(4)]);
    }
}
