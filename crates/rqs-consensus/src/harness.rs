//! End-to-end consensus deployment, generic over the execution
//! substrate: builds a proposer/acceptor/learner deployment over a
//! refined quorum system, drives proposals and measures learning latency
//! in message delays.
//!
//! [`ConsensusDeployment`] is written once against
//! [`Substrate`](rqs_sim::Substrate); [`ConsensusHarness`] is its
//! deterministic-simulator alias (with extra sim-only scripting methods)
//! and `rqs_runtime::RtConsensus` wraps the same driver on the threaded
//! runtime.

use crate::acceptor::{Acceptor, ConsensusConfig};
use crate::learner::Learner;
use crate::proposer::Proposer;
use crate::types::{ConsensusMsg, ProposalValue};
use rqs_core::{ProcessId, ProcessSet, Rqs};
use rqs_crypto::{KeyRegistry, SignerId};
use rqs_sim::{
    Automaton, NetworkScript, NodeId, Scenario, Substrate, SubstrateConfig, Time, World,
};
use std::sync::Arc;
use std::time::Duration;

/// A consensus deployment on any [`Substrate`].
///
/// # Examples
///
/// ```
/// use rqs_core::threshold::ThresholdConfig;
/// use rqs_consensus::ConsensusHarness;
///
/// // n = 3t+1 = 4 Byzantine acceptors, 2 proposers, 2 learners.
/// let rqs = ThresholdConfig::byzantine_fast(1).build()?;
/// let mut h = ConsensusHarness::new(rqs, 2, 2);
/// h.propose(0, 42);
/// assert!(h.run_until_learned(100_000));
/// // Best case: every learner learns in 2 message delays.
/// assert_eq!(h.learner_delays(), vec![Some(2), Some(2)]);
/// assert_eq!(h.agreed_value(), Some(42));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ConsensusDeployment<S: Substrate<ConsensusMsg>> {
    sub: S,
    cfg: ConsensusConfig,
    propose_time: Option<Time>,
    crashed_learners: Vec<usize>,
}

/// The simulated consensus deployment (back-compat alias).
pub type ConsensusHarness = ConsensusDeployment<World<ConsensusMsg>>;

impl<S: Substrate<ConsensusMsg>> ConsensusDeployment<S> {
    /// Builds a fault-free deployment.
    pub fn new(rqs: Rqs, proposers: usize, learners: usize) -> Self {
        Self::with_scenario(rqs, proposers, learners, Scenario::default())
    }

    /// Builds a deployment under a fault scenario (acceptor crash plans,
    /// link effects; the scenario's `byzantine` indices are rejected here
    /// — Byzantine acceptors are scripted per experiment).
    pub fn with_scenario(rqs: Rqs, proposers: usize, learners: usize, scenario: Scenario) -> Self {
        Self::with_setup(rqs, proposers, learners, scenario, rqs_sim::DEFAULT_TICK)
    }

    /// Builds with a scenario and an explicit wall-clock tick length
    /// (ignored by the simulator).
    ///
    /// # Panics
    ///
    /// Panics if the scenario names Byzantine nodes (consensus Byzantine
    /// behaviours are experiment-specific scripts; use
    /// [`ConsensusHarness::make_byzantine`]).
    pub fn with_setup(
        rqs: Rqs,
        proposers: usize,
        learners: usize,
        scenario: Scenario,
        tick: Duration,
    ) -> Self {
        assert!(proposers >= 1, "at least one proposer");
        assert!(learners >= 1, "at least one learner");
        assert!(
            scenario.byzantine.is_empty(),
            "consensus deployments take scripted Byzantine acceptors, not scenario swap-ins"
        );
        let n = rqs.universe_size();
        let rqs = Arc::new(rqs);
        let registry = KeyRegistry::new(n, 0xC0FFEE);
        let cfg = ConsensusConfig {
            rqs,
            registry: registry.clone(),
            acceptors: (0..n).map(NodeId).collect(),
            proposers: (n..n + proposers).map(NodeId).collect(),
            learners: (n + proposers..n + proposers + learners)
                .map(NodeId)
                .collect(),
        };
        let mut nodes: Vec<Box<dyn Automaton<ConsensusMsg> + Send>> = Vec::new();
        for i in 0..n {
            nodes.push(Box::new(Acceptor::new(
                cfg.clone(),
                ProcessId(i),
                registry.signer(SignerId(i)),
            )));
        }
        for i in 0..proposers {
            let me = cfg.proposers[i];
            nodes.push(Box::new(Proposer::new(cfg.clone(), me)));
        }
        for _ in 0..learners {
            nodes.push(Box::new(Learner::new(cfg.clone())));
        }
        // Substrate::build runs on_start, arming the learners' pull timers.
        let config = SubstrateConfig::new(nodes).scenario(scenario).tick(tick);
        let sub = S::build(config);
        ConsensusDeployment {
            sub,
            cfg,
            propose_time: None,
            crashed_learners: Vec::new(),
        }
    }

    /// The deployment wiring.
    pub fn config(&self) -> &ConsensusConfig {
        &self.cfg
    }

    /// The underlying substrate.
    pub fn substrate(&mut self) -> &mut S {
        &mut self.sub
    }

    /// Crashes a set of acceptors (universe indices) now.
    pub fn crash_acceptors(&mut self, faulty: ProcessSet) {
        for p in faulty.iter() {
            self.sub.crash(self.cfg.acceptors[p.index()]);
        }
    }

    /// Marks learner `i` crashed (excluded from agreement checks).
    pub fn crash_learner(&mut self, i: usize) {
        self.sub.crash(self.cfg.learners[i]);
        self.crashed_learners.push(i);
    }

    /// Proposer `i` proposes `value`. The first proposal timestamps the
    /// latency measurement.
    pub fn propose(&mut self, i: usize, value: ProposalValue) {
        let node = self.cfg.proposers[i];
        if self.propose_time.is_none() {
            self.propose_time = Some(self.sub.now_ticks());
        }
        self.sub
            .invoke_on::<Proposer>(node, move |p, ctx| p.propose(value, ctx));
    }

    /// Runs until every correct learner has learned (or the budget is
    /// exhausted — `max_steps` events on the simulator, the configured
    /// timeout per learner on wall-clock substrates); returns whether
    /// they all learned.
    pub fn run_until_learned(&mut self, max_steps: usize) -> bool {
        let learners: Vec<NodeId> = self
            .cfg
            .learners
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed_learners.contains(i))
            .map(|(_, &n)| n)
            .collect();
        learners.into_iter().all(|l| {
            self.sub
                .await_on::<Learner>(l, |lr| lr.learned().is_some(), max_steps)
        })
    }

    /// Learned value of learner `i`, if any.
    pub fn learned(&self, i: usize) -> Option<ProposalValue> {
        self.sub
            .inspect_on::<Learner, Option<ProposalValue>>(self.cfg.learners[i], |l| {
                l.learned().map(|(v, _)| v)
            })
    }

    /// Message delays from the first propose to each learner's learn time
    /// (`None` for learners that have not learned). One protocol tick is
    /// one message delay.
    pub fn learner_delays(&self) -> Vec<Option<u64>> {
        let t0 = self.propose_time.unwrap_or(Time::ZERO);
        self.cfg
            .learners
            .iter()
            .map(|&l| {
                self.sub
                    .inspect_on::<Learner, Option<Time>>(l, |lr| lr.learned().map(|(_, t)| t))
                    .map(|t| t.since(t0))
            })
            .collect()
    }

    /// The agreed value if every correct learner learned the same value;
    /// `None` if any is missing or they disagree (an Agreement violation).
    pub fn agreed_value(&self) -> Option<ProposalValue> {
        let mut agreed: Option<ProposalValue> = None;
        for (i, _) in self.cfg.learners.iter().enumerate() {
            if self.crashed_learners.contains(&i) {
                continue;
            }
            let v = self.learned(i)?;
            match agreed {
                None => agreed = Some(v),
                Some(prev) if prev != v => return None,
                _ => {}
            }
        }
        agreed
    }

    /// Decided value at acceptor `i` (inspection).
    pub fn acceptor_decided(&self, i: usize) -> Option<ProposalValue> {
        self.sub
            .inspect_on::<Acceptor, Option<ProposalValue>>(self.cfg.acceptors[i], |a| a.decided())
    }

    /// Stops the substrate (a no-op on the simulator).
    pub fn shutdown(&mut self) {
        self.sub.shutdown();
    }
}

/// Simulator-only scripting surface.
impl ConsensusHarness {
    /// Builds a deployment with a custom network script.
    pub fn with_script(rqs: Rqs, proposers: usize, learners: usize, script: NetworkScript) -> Self {
        let mut h = Self::new(rqs, proposers, learners);
        h.world_mut().set_policy(script);
        h
    }

    /// The underlying world.
    pub fn world_mut(&mut self) -> &mut World<ConsensusMsg> {
        &mut self.sub
    }

    /// Crashes proposer `i` at the given time (leader-failure scenarios).
    pub fn crash_proposer_at(&mut self, i: usize, at: Time) {
        let node = self.cfg.proposers[i];
        self.sub.crash_at(node, at);
    }

    /// Replaces an acceptor with a Byzantine automaton (simulator only:
    /// the scripted acceptors need not be `Send`).
    pub fn make_byzantine(&mut self, idx: usize, node: Box<dyn Automaton<ConsensusMsg>>) {
        let id = self.cfg.acceptors[idx];
        self.sub.replace_node(id, node);
    }

    /// Current time.
    pub fn now(&self) -> Time {
        self.sub.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    /// n = 7, t = 2, k = 1, q = 0, r = 1: three distinct latency classes.
    fn graded_rqs() -> Rqs {
        ThresholdConfig::new(7, 2, 1)
            .with_class1(0)
            .with_class2(1)
            .build()
            .unwrap()
    }

    #[test]
    fn best_case_two_delays() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        h.propose(0, 7);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.agreed_value(), Some(7));
        assert_eq!(h.learner_delays(), vec![Some(2), Some(2)]);
    }

    #[test]
    fn one_crash_three_delays() {
        let mut h = ConsensusHarness::new(graded_rqs(), 2, 2);
        h.crash_acceptors(ProcessSet::from_indices([6]));
        h.propose(0, 9);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.agreed_value(), Some(9));
        for d in h.learner_delays() {
            assert_eq!(d, Some(3), "class-2 quorum → 3 message delays");
        }
    }

    #[test]
    fn two_crashes_four_delays() {
        let mut h = ConsensusHarness::new(graded_rqs(), 2, 2);
        h.crash_acceptors(ProcessSet::from_indices([5, 6]));
        h.propose(0, 4);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.agreed_value(), Some(4));
        for d in h.learner_delays() {
            assert_eq!(d, Some(4), "class-3 quorum → 4 message delays");
        }
    }

    #[test]
    fn leader_crash_recovers_through_view_change() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 1);
        // Proposer 0 crashes immediately: its initial-view prepare never
        // arrives (crash at t0 before sending is processed).
        h.crash_proposer_at(0, Time::ZERO);
        // Proposer 1 proposes; in the initial view its prepare reaches the
        // acceptors directly (all proposers may propose in view 0).
        h.propose(1, 11);
        assert!(h.run_until_learned(400_000));
        assert_eq!(h.agreed_value(), Some(11));
    }

    #[test]
    fn contention_still_agrees() {
        // Both proposers propose different values in the initial view:
        // acceptors prepare whichever arrives first; agreement must hold
        // even if the fast path fails and a view change is needed.
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        h.propose(0, 1);
        h.propose(1, 2);
        assert!(h.run_until_learned(400_000), "contention must terminate");
        let v = h.agreed_value().expect("all learners agree");
        assert!(v == 1 || v == 2, "validity: an actually-proposed value");
    }

    #[test]
    fn slow_path_only_baseline_four_delays() {
        // Classic Byzantine quorums (QC1 = QC2 = ∅): only the update3 rule
        // can fire — the no-fast-path baseline.
        let rqs = ThresholdConfig::classic_byzantine(4).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 1, 1);
        h.propose(0, 3);
        assert!(h.run_until_learned(200_000));
        assert_eq!(h.learner_delays(), vec![Some(4)]);
    }

    #[test]
    fn scenario_acceptor_crash_degrades_but_learns() {
        let scenario = Scenario::named("late-crash").crash(6, 0);
        let mut h =
            ConsensusDeployment::<World<ConsensusMsg>>::with_scenario(graded_rqs(), 1, 1, scenario);
        h.propose(0, 5);
        assert!(h.run_until_learned(400_000));
        assert_eq!(h.agreed_value(), Some(5));
    }
}
