//! The `choose()` function (Fig. 13) and ack validation — the safety core
//! of the consensus algorithm.
//!
//! `choose()` inspects a quorum of (validated) `new_view_ack`s and either
//! returns the value that *may* have been decided in an earlier view, or
//! aborts — which, by Lemma 28, only happens when the quorum contains a
//! Byzantine acceptor, so the proposer simply waits for a different
//! quorum.

use crate::types::{
    encode_new_view_ack, encode_update, NewViewAckBody, ProposalValue, SignedNewViewAck, View,
};
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_crypto::{KeyRegistry, SignerId};
use std::collections::BTreeMap;

/// The proposer's view of a quorum of acks, ready for `choose()`.
#[derive(Debug)]
pub struct ChooseInput<'a> {
    /// The refined quorum system over the acceptors.
    pub rqs: &'a Rqs,
    /// The quorum the acks came from.
    pub q: QuorumId,
    /// One validated ack per member of `q`.
    pub acks: &'a BTreeMap<ProcessId, NewViewAckBody>,
}

/// Result of `choose()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChooseOutcome {
    /// The value to propose.
    pub value: ProposalValue,
    /// Abort flag — set only when the ack quorum is provably tainted.
    pub abort: bool,
}

impl<'a> ChooseInput<'a> {
    fn q_set(&self) -> ProcessSet {
        self.rqs.quorum(self.q)
    }

    fn ack(&self, p: ProcessId) -> &NewViewAckBody {
        &self.acks[&p]
    }

    /// All `(value, view)` pairs mentioned anywhere in the acks — the
    /// candidate domain.
    fn mentioned(&self) -> Vec<(ProposalValue, View)> {
        let mut out: Vec<(ProposalValue, View)> = Vec::new();
        let mut push = |v: ProposalValue, w: View| {
            if !out.contains(&(v, w)) {
                out.push((v, w));
            }
        };
        for p in self.q_set().iter() {
            let a = self.ack(p);
            if let Some(v) = a.prep {
                for &w in &a.prep_view {
                    push(v, w);
                }
            }
            for s in 0..2 {
                if let Some(v) = a.update[s] {
                    for &w in &a.update_view[s] {
                        push(v, w);
                    }
                }
            }
        }
        out
    }

    /// `Cand2(v, w)` (Fig. 13 line 1): some class-1 quorum `Q1` has all of
    /// `(Q1 ∩ Q) \ B` reporting "prepared `v` in `w`", for some `B ∈ B`.
    ///
    /// With `W` the reporting members of `Q`, a witness `B` exists iff
    /// `(Q1 ∩ Q) \ W ∈ B` (downward closure).
    pub fn cand2(&self, v: ProposalValue, w: View) -> bool {
        let q_set = self.q_set();
        let reporting: ProcessSet = q_set
            .iter()
            .filter(|&p| {
                let a = self.ack(p);
                a.prep == Some(v) && a.prep_view.contains(&w)
            })
            .collect();
        self.rqs.class1_ids().iter().any(|&q1| {
            let missing = self
                .rqs
                .quorum(q1)
                .intersection(q_set)
                .difference(reporting);
            self.rqs.adversary().contains(missing)
        })
    }

    /// Members of `Q` reporting "1-updated `v` in `w` with quorum `q2`".
    fn updated1_with(&self, v: ProposalValue, w: View, q2: QuorumId) -> ProcessSet {
        self.q_set()
            .iter()
            .filter(|&p| {
                let a = self.ack(p);
                a.update[0] == Some(v)
                    && a.update_view[0].contains(&w)
                    && a.update_q[0].get(&w).is_some_and(|qs| qs.contains(&q2))
            })
            .collect()
    }

    /// `C3(v, w, char, Q2, B)` witness existence for a fixed `Q2`
    /// (Fig. 13 line 2): with `W` the reporting members and
    /// `M = Q2 ∩ Q \ W`, a witness `B` exists iff `M ∈ B` and
    /// `P3char(Q2, Q, M)` (enlarging `B` beyond `M` only makes `P3char`
    /// harder).
    fn c3_witness(&self, v: ProposalValue, w: View, char_a: bool, q2: QuorumId) -> bool {
        let q_set = self.q_set();
        let q2_set = self.rqs.quorum(q2);
        let reporting = self.updated1_with(v, w, q2);
        let m = q2_set.intersection(q_set).difference(reporting);
        if !self.rqs.adversary().contains(m) {
            return false;
        }
        if char_a {
            self.rqs.p3a(q2_set, q_set, m)
        } else {
            self.rqs.p3b(q2_set, q_set, m)
        }
    }

    /// `Cand3(v, w, char)` (Fig. 13 line 3).
    pub fn cand3(&self, v: ProposalValue, w: View, char_a: bool) -> bool {
        self.rqs
            .class2_ids()
            .iter()
            .any(|&q2| self.c3_witness(v, w, char_a, q2))
    }

    /// `Valid3(v, w, 'b')` (Fig. 13 line 4): for every class-2 quorum `Q2`
    /// witnessing `C3`, every member of `Q2 ∩ Q` either reports
    /// "prepared `v` in `w`" or reports only views above `w`.
    pub fn valid3(&self, v: ProposalValue, w: View, char_a: bool) -> bool {
        let q_set = self.q_set();
        self.rqs.class2_ids().iter().all(|&q2| {
            if !self.c3_witness(v, w, char_a, q2) {
                return true;
            }
            self.rqs.quorum(q2).intersection(q_set).iter().all(|p| {
                let a = self.ack(p);
                (a.prep == Some(v) && a.prep_view.contains(&w))
                    || a.prep_view.iter().all(|&w2| w2 > w)
            })
        })
    }

    /// `Cand4(v, w)` (Fig. 13 line 5): some member reports "2-updated `v`
    /// in `w`".
    pub fn cand4(&self, v: ProposalValue, w: View) -> bool {
        self.q_set().iter().any(|p| {
            let a = self.ack(p);
            a.update[1] == Some(v) && a.update_view[1].contains(&w)
        })
    }

    fn is_candidate(&self, v: ProposalValue, w: View) -> bool {
        self.cand2(v, w) || self.cand3(v, w, true) || self.cand3(v, w, false) || self.cand4(v, w)
    }

    /// The `choose()` function (Fig. 13 lines 10–21).
    ///
    /// `default` is the proposer's own value `v'`, returned when no
    /// candidate exists.
    pub fn choose(&self, default: ProposalValue) -> ChooseOutcome {
        let mentioned = self.mentioned();
        let candidates: Vec<(ProposalValue, View)> = mentioned
            .iter()
            .copied()
            .filter(|&(v, w)| self.is_candidate(v, w))
            .collect();
        // Line 21: no candidate → keep the proposer's value.
        let Some(view_max) = candidates.iter().map(|&(_, w)| w).max() else {
            return ChooseOutcome {
                value: default,
                abort: false,
            };
        };
        let at_max: Vec<ProposalValue> = {
            let mut vs: Vec<ProposalValue> = candidates
                .iter()
                .filter(|&&(_, w)| w == view_max)
                .map(|&(v, _)| v)
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        // Line 13–14: Cand3(·,'a') or Cand4 wins outright.
        if let Some(&v) = at_max
            .iter()
            .find(|&&v| self.cand3(v, view_max, true) || self.cand4(v, view_max))
        {
            return ChooseOutcome {
                value: v,
                abort: false,
            };
        }
        // Line 15–16: two distinct Cand3(·,'b') values → abort.
        let b_cands: Vec<ProposalValue> = at_max
            .iter()
            .copied()
            .filter(|&v| self.cand3(v, view_max, false))
            .collect();
        if b_cands.len() >= 2 {
            return ChooseOutcome {
                value: default,
                abort: true,
            };
        }
        // Line 17–19: a single Cand3(·,'b') value must also be Valid3.
        if let Some(&v) = b_cands.first() {
            if self.valid3(v, view_max, false) {
                return ChooseOutcome {
                    value: v,
                    abort: false,
                };
            }
            return ChooseOutcome {
                value: default,
                abort: true,
            };
        }
        // Line 20: fall back to the (unique — Lemma 22) Cand2 value.
        if let Some(&v) = at_max.iter().find(|&&v| self.cand2(v, view_max)) {
            return ChooseOutcome {
                value: v,
                abort: false,
            };
        }
        // Candidates existed only at lower views than view_max for other
        // predicates — unreachable by construction of view_max, but keep a
        // safe default.
        ChooseOutcome {
            value: default,
            abort: false,
        }
    }
}

/// Validates a signed `new_view_ack`:
///
/// 1. the signature is the claimed acceptor's, over the canonical body;
/// 2. for every step and view in `update_view`, the `update_proof` carries
///    signed `update_step` echoes from a **basic** subset of acceptors,
///    each verifying against the claimed value/view.
pub fn validate_ack(rqs: &Rqs, registry: &KeyRegistry, ack: &SignedNewViewAck) -> bool {
    let bytes = encode_new_view_ack(&ack.body);
    if !registry.verify(SignerId(ack.acceptor.0), &bytes, &ack.sig) {
        return false;
    }
    for s in 0..2 {
        let Some(v) = ack.body.update[s] else {
            if !ack.body.update_view[s].is_empty() {
                return false;
            }
            continue;
        };
        for &w in &ack.body.update_view[s] {
            let Some(proofs) = ack.body.update_proof[s].get(&w) else {
                return false;
            };
            let signers: ProcessSet = proofs.iter().map(|p| p.acceptor).collect();
            if signers.len() != proofs.len() {
                return false; // duplicate signers
            }
            if !rqs.adversary().is_basic(signers) {
                return false;
            }
            let msg = encode_update(s + 1, v, w);
            for p in proofs {
                if p.step != s + 1 || p.value != v || p.view != w {
                    return false;
                }
                if !registry.verify(SignerId(p.acceptor.0), &msg, &p.sig) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SignedUpdate;
    use rqs_core::threshold::ThresholdConfig;

    /// n = 4, t = k = 1: quorums are all 3-subsets (class 2) plus the full
    /// set (class 1).
    fn rqs() -> Rqs {
        ThresholdConfig::byzantine_fast(1).build().unwrap()
    }

    fn empty_acks(members: ProcessSet) -> BTreeMap<ProcessId, NewViewAckBody> {
        members
            .iter()
            .map(|p| {
                (
                    p,
                    NewViewAckBody {
                        view: 1,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    fn quorum_of(rqs: &Rqs, set: ProcessSet) -> QuorumId {
        rqs.id_of(set).expect("quorum exists")
    }

    #[test]
    fn no_candidates_returns_default() {
        let rqs = rqs();
        let q = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let acks = empty_acks(rqs.quorum(q));
        let input = ChooseInput {
            rqs: &rqs,
            q,
            acks: &acks,
        };
        let out = input.choose(42);
        assert_eq!(
            out,
            ChooseOutcome {
                value: 42,
                abort: false
            }
        );
    }

    #[test]
    fn cand2_forces_prepared_value() {
        let rqs = rqs();
        let q = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let mut acks = empty_acks(rqs.quorum(q));
        // All three members report prepared v=7 in view 0: the class-1
        // quorum (universe) ∩ Q minus reporters = ∅ ∈ B → Cand2 holds.
        for (_, a) in acks.iter_mut() {
            a.prep = Some(7);
            a.prep_view.insert(0);
        }
        let input = ChooseInput {
            rqs: &rqs,
            q,
            acks: &acks,
        };
        assert!(input.cand2(7, 0));
        let out = input.choose(42);
        assert_eq!(
            out,
            ChooseOutcome {
                value: 7,
                abort: false
            }
        );
    }

    #[test]
    fn cand2_tolerates_one_missing_reporter() {
        let rqs = rqs();
        let q = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let mut acks = empty_acks(rqs.quorum(q));
        // Two of three report: missing {1 acceptor} ∈ B_1 → Cand2 holds.
        for (p, a) in acks.iter_mut() {
            if p.0 != 2 {
                a.prep = Some(7);
                a.prep_view.insert(0);
            }
        }
        let input = ChooseInput {
            rqs: &rqs,
            q,
            acks: &acks,
        };
        assert!(input.cand2(7, 0));
    }

    #[test]
    fn cand4_wins_over_cand2() {
        // A 2-update in the same view outranks a bare preparation
        // (lines 13–14 precede line 20).
        let rqs = rqs();
        let q = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let mut acks = empty_acks(rqs.quorum(q));
        for (p, a) in acks.iter_mut() {
            a.prep = Some(7);
            a.prep_view.insert(1);
            if p.0 == 0 {
                a.update[1] = Some(7);
                a.update_view[1].insert(1);
            }
        }
        let input = ChooseInput {
            rqs: &rqs,
            q,
            acks: &acks,
        };
        assert!(input.cand4(7, 1));
        assert_eq!(input.choose(42).value, 7);
    }

    #[test]
    fn higher_view_candidate_wins() {
        let rqs = rqs();
        let q = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let mut acks = empty_acks(rqs.quorum(q));
        // Everyone prepared v=5 in view 1; everyone prepared v=9 in view 2
        // (modelled as prep=9 with prep_view={2}, and 5 left in update).
        for (_, a) in acks.iter_mut() {
            a.prep = Some(9);
            a.prep_view.insert(2);
            a.update[1] = Some(5);
            a.update_view[1].insert(1);
        }
        let input = ChooseInput {
            rqs: &rqs,
            q,
            acks: &acks,
        };
        assert!(input.cand4(5, 1));
        assert!(input.cand2(9, 2));
        assert_eq!(input.choose(0).value, 9, "view 2 dominates view 1");
    }

    #[test]
    fn cand3_a_with_update_quorum() {
        let rqs = rqs();
        let full = quorum_of(&rqs, ProcessSet::universe(4));
        let q3 = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let mut acks = empty_acks(rqs.quorum(full));
        // All of Q2 = {0,1,2} ∩ Q report 1-updated v=3 in view 1 with q3:
        for (p, a) in acks.iter_mut() {
            if p.0 <= 2 {
                a.update[0] = Some(3);
                a.update_view[0].insert(1);
                a.update_q[0].entry(1).or_default().insert(q3);
            }
        }
        let input = ChooseInput {
            rqs: &rqs,
            q: full,
            acks: &acks,
        };
        // M = ∅ for Q2 = {0,1,2}: P3a(Q2, Q, ∅) ⇔ |Q2∩Q| = 3 > k… basic ✓.
        assert!(input.cand3(3, 1, true));
        assert_eq!(input.choose(0).value, 3);
    }

    #[test]
    fn conflicting_b_candidates_abort() {
        // Two distinct values both Cand3(·,'b') at view_max → abort
        // (lines 15–16). Craft via Byzantine-style acks: {0} claims
        // 1-updated 3, {1} claims 1-updated 4, each with a class-2 quorum
        // whose other members are "covered" by B.
        let rqs = rqs();
        let full = quorum_of(&rqs, ProcessSet::universe(4));
        let q012 = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 2]));
        let q013 = quorum_of(&rqs, ProcessSet::from_indices([0, 1, 3]));
        let mut acks = empty_acks(rqs.quorum(full));
        for (p, a) in acks.iter_mut() {
            match p.0 {
                0 | 1 => {
                    a.update[0] = Some(3);
                    a.update_view[0].insert(1);
                    a.update_q[0].entry(1).or_default().insert(q012);
                }
                2 | 3 => {
                    a.update[0] = Some(4);
                    a.update_view[0].insert(1);
                    a.update_q[0].entry(1).or_default().insert(q013);
                }
                _ => {}
            }
        }
        let input = ChooseInput {
            rqs: &rqs,
            q: full,
            acks: &acks,
        };
        // For v=3 with Q2={0,1,2}: M = {2} ∈ B_1; for v=4 with Q2={0,1,3}:
        // M = {0,1}… not in B; with Q2={2,3,x}…
        // Validate at least that choose() never returns a non-candidate
        // silently: either abort or one of {3,4,default}.
        let out = input.choose(99);
        if !out.abort {
            assert!([3u64, 4, 99].contains(&out.value));
        }
    }

    #[test]
    fn validate_ack_checks_signatures_and_proofs() {
        let rqs = rqs();
        let registry = KeyRegistry::new(4, 5);
        let mut body = NewViewAckBody {
            view: 2,
            ..Default::default()
        };
        body.update[0] = Some(6);
        body.update_view[0].insert(1);
        // Proofs: acceptors 1 and 2 vouch (basic for k=1 needs ≥ 2).
        let proofs: Vec<SignedUpdate> = [1usize, 2]
            .iter()
            .map(|&i| SignedUpdate {
                acceptor: ProcessId(i),
                step: 1,
                value: 6,
                view: 1,
                sig: registry.signer(SignerId(i)).sign(&encode_update(1, 6, 1)),
            })
            .collect();
        body.update_proof[0].insert(1, proofs);
        let sig = registry
            .signer(SignerId(0))
            .sign(&encode_new_view_ack(&body));
        let ack = SignedNewViewAck {
            acceptor: ProcessId(0),
            body: body.clone(),
            sig,
        };
        assert!(validate_ack(&rqs, &registry, &ack));

        // Tampered value → body signature breaks.
        let mut tampered = ack.clone();
        tampered.body.update[0] = Some(7);
        assert!(!validate_ack(&rqs, &registry, &tampered));

        // Too few proof signers (1 < basic) → invalid.
        let mut thin = body.clone();
        let one_proof = thin.update_proof[0].get_mut(&1).unwrap();
        one_proof.truncate(1);
        let sig = registry
            .signer(SignerId(0))
            .sign(&encode_new_view_ack(&thin));
        let thin_ack = SignedNewViewAck {
            acceptor: ProcessId(0),
            body: thin,
            sig,
        };
        assert!(!validate_ack(&rqs, &registry, &thin_ack));

        // Wrong signer id on the ack → invalid.
        let wrong = SignedNewViewAck {
            acceptor: ProcessId(3),
            body,
            sig: ack.sig,
        };
        assert!(!validate_ack(&rqs, &registry, &wrong));
    }

    #[test]
    fn validate_ack_rejects_updateview_without_value() {
        let rqs = rqs();
        let registry = KeyRegistry::new(4, 5);
        let mut body = NewViewAckBody {
            view: 2,
            ..Default::default()
        };
        body.update_view[0].insert(1); // view without a value
        let sig = registry
            .signer(SignerId(0))
            .sign(&encode_new_view_ack(&body));
        let ack = SignedNewViewAck {
            acceptor: ProcessId(0),
            body,
            sig,
        };
        assert!(!validate_ack(&rqs, &registry, &ack));
    }
}
