//! The learner automaton (Fig. 15 learner side).
//!
//! A learner learns a value as soon as it decides one through the three
//! update rules (lines 51–53, 60), or upon receiving `decision⟨v⟩` from a
//! basic subset of acceptors (line 101). A learner that has not learned
//! keeps pulling decisions from acceptors (lines 102–103).

use crate::acceptor::ConsensusConfig;
use crate::decide::DecisionTracker;
use crate::persist::LearnerCore;
use crate::types::{ConsensusMsg, ProposalValue};
use rqs_core::ProcessSet;
use rqs_obs::{Obs, TraceKind, LANE_SYS};
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken};
use rqs_store::StoreHandle;
use std::any::Any;
use std::collections::BTreeMap;

/// Interval between decision pulls while unlearned (the paper's "preset
/// time").
pub const PULL_INTERVAL: u64 = 10;

/// The learner automaton.
#[derive(Debug)]
pub struct Learner {
    cfg: ConsensusConfig,
    decider: DecisionTracker,
    decision_senders: BTreeMap<ProposalValue, ProcessSet>,
    learned: Option<(ProposalValue, Time)>,
    pull_timer: Option<TimerToken>,
    /// Planted bug (checker self-tests): trust `decision⟨v⟩` one sender
    /// short of a basic subset — i.e. from a set that may be entirely
    /// Byzantine. Always `false` outside the `mutants` feature.
    one_short_decisions: bool,
    /// Write-ahead store for the learned value; `None` stays volatile.
    store: Option<StoreHandle>,
    obs: Obs,
}

impl Learner {
    /// Creates a learner.
    pub fn new(cfg: ConsensusConfig) -> Self {
        let decider = DecisionTracker::new(cfg.rqs.clone());
        Learner {
            cfg,
            decider,
            decision_senders: BTreeMap::new(),
            learned: None,
            pull_timer: None,
            one_short_decisions: false,
            store: None,
            obs: Obs::nop(),
        }
    }

    /// Installs a structured-trace observer; by convention its tag is
    /// this learner's node id (the learn event is emitted outside a
    /// context, so the tag doubles as the node attribution).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// A learner journaling its learned value to `store`, so an amnesia
    /// restart cannot un-learn a value it may already have reported.
    pub fn with_store(cfg: ConsensusConfig, store: StoreHandle) -> Self {
        let mut l = Learner::new(cfg);
        l.store = Some(store);
        l
    }

    /// Mutant: a learner whose decision rule is one sender short of the
    /// required basic subset (quorum-size off-by-one). For checker
    /// self-tests only.
    #[cfg(feature = "mutants")]
    pub fn new_mutant_one_short(cfg: ConsensusConfig) -> Self {
        let mut l = Learner::new(cfg);
        l.one_short_decisions = true;
        l
    }

    /// `true` iff adding any single extra acceptor to `senders` would
    /// make it a basic subset — the off-by-one acceptance the mutant uses.
    fn one_short_of_basic(&self, senders: ProcessSet) -> bool {
        let n = self.cfg.rqs.universe_size();
        (0..n).map(rqs_core::ProcessId).any(|p| {
            if senders.contains(p) {
                return false;
            }
            let mut extended = senders;
            extended.insert(p);
            self.cfg.rqs.adversary().is_basic(extended)
        })
    }

    /// The learned value and the time it was learned, if any.
    pub fn learned(&self) -> Option<(ProposalValue, Time)> {
        self.learned
    }

    fn learn(&mut self, v: ProposalValue, now: Time) {
        if self.learned.is_none() {
            self.learned = Some((v, now));
            self.obs.emit(
                TraceKind::OpCompleted,
                now.ticks(),
                self.obs.tag(),
                LANE_SYS,
                v,
                0,
            );
            // Write-ahead: durable before the learn is observable.
            if let Some(store) = &self.store {
                store.append(
                    &LearnerCore {
                        learned: Some((v, now.0)),
                    }
                    .encode(),
                );
            }
        }
    }

    fn ensure_pull_timer(&mut self, ctx: &mut Context<ConsensusMsg>) {
        if self.learned.is_none() && self.pull_timer.is_none() {
            self.pull_timer = Some(ctx.set_timer(PULL_INTERVAL));
        }
    }
}

impl Automaton<ConsensusMsg> for Learner {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a_fold(
            rqs_sim::fnv1a(format!("{:?},{:?}", self.decision_senders, self.learned).as_bytes()),
            self.decider.state_digest(),
        )
    }

    fn on_start(&mut self, ctx: &mut Context<ConsensusMsg>) {
        // Lines 102–103: learners pull on a timer from the start, so even
        // a learner cut off from all protocol traffic eventually catches
        // up once the network heals.
        self.ensure_pull_timer(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: ConsensusMsg, ctx: &mut Context<ConsensusMsg>) {
        let Some(sender) = self.cfg.acceptor_index(from) else {
            return; // learners only listen to acceptors
        };
        // Any protocol traffic starts the pull loop (lines 102–103).
        self.ensure_pull_timer(ctx);
        match msg {
            ConsensusMsg::Update {
                step,
                value,
                view,
                quorum,
            } => {
                if let Some(v) = self.decider.record(step, value, view, quorum, sender) {
                    self.learn(v, ctx.now()); // line 60
                }
            }
            ConsensusMsg::Decision { value } => {
                let senders = self.decision_senders.entry(value).or_default();
                senders.insert(sender);
                let senders = *senders;
                // Line 101: a basic subset of decisions is trustworthy.
                // The one-short mutant accepts a possibly-all-Byzantine
                // sender set (quorum-size off-by-one).
                let trusted = self.cfg.rqs.adversary().is_basic(senders)
                    || (self.one_short_decisions && self.one_short_of_basic(senders));
                if trusted {
                    self.decider.force_decide(value);
                    self.learn(value, ctx.now());
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<ConsensusMsg>) {
        if self.pull_timer != Some(timer) {
            return;
        }
        self.pull_timer = None;
        if self.learned.is_none() {
            ctx.broadcast(self.cfg.acceptors.clone(), ConsensusMsg::DecisionPull);
            self.pull_timer = Some(ctx.set_timer(PULL_INTERVAL));
        }
    }

    fn save_state(&mut self) {
        if let Some(store) = &self.store {
            let core = LearnerCore {
                learned: self.learned.map(|(v, t)| (v, t.0)),
            };
            store.install_snapshot(&core.encode());
        }
    }

    fn restore_state(&mut self) -> usize {
        let Some(store) = self.store.clone() else {
            return 0;
        };
        store.crash();
        let rec = store.load();
        let (core, replayed) = LearnerCore::restore(&rec);
        // Sender maps and the pull timer are volatile: the pull loop
        // re-arms on the next protocol traffic (or finds the value
        // already learned).
        self.decider = DecisionTracker::new(self.cfg.rqs.clone());
        self.decision_senders = BTreeMap::new();
        self.pull_timer = None;
        self.learned = core.unwrap_or_default().learned.map(|(v, t)| (v, Time(t)));
        if let Some((v, _)) = self.learned {
            self.decider.force_decide(v);
        }
        replayed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;
    use rqs_crypto::KeyRegistry;
    use std::sync::Arc;

    fn config() -> ConsensusConfig {
        ConsensusConfig {
            rqs: Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap()),
            registry: KeyRegistry::new(4, 11),
            acceptors: (0..4).map(NodeId).collect(),
            proposers: vec![NodeId(4), NodeId(5)],
            learners: vec![NodeId(6)],
        }
    }

    fn ctx(at: u64) -> Context<ConsensusMsg> {
        Context::new(NodeId(6), Time(at), 0)
    }

    #[test]
    fn learns_from_class1_update1_quorum() {
        let cfg = config();
        let mut l = Learner::new(cfg);
        for i in 0..4 {
            let mut c = ctx(2);
            l.on_message(
                NodeId(i),
                ConsensusMsg::Update {
                    step: 1,
                    value: 7,
                    view: 0,
                    quorum: None,
                },
                &mut c,
            );
        }
        assert_eq!(l.learned().map(|(v, _)| v), Some(7));
        assert_eq!(l.learned().map(|(_, t)| t), Some(Time(2)));
    }

    #[test]
    fn learns_from_basic_subset_of_decisions() {
        let cfg = config();
        let mut l = Learner::new(cfg);
        let mut c = ctx(3);
        l.on_message(NodeId(0), ConsensusMsg::Decision { value: 4 }, &mut c);
        assert_eq!(l.learned(), None, "one decision (∈ B_1) is not enough");
        let mut c2 = ctx(4);
        l.on_message(NodeId(1), ConsensusMsg::Decision { value: 4 }, &mut c2);
        assert_eq!(l.learned().map(|(v, _)| v), Some(4));
    }

    #[test]
    fn conflicting_single_decisions_do_not_learn() {
        let cfg = config();
        let mut l = Learner::new(cfg);
        let mut c = ctx(3);
        l.on_message(NodeId(0), ConsensusMsg::Decision { value: 4 }, &mut c);
        l.on_message(NodeId(1), ConsensusMsg::Decision { value: 5 }, &mut c);
        assert_eq!(l.learned(), None);
    }

    #[test]
    fn ignores_non_acceptor_senders() {
        let cfg = config();
        let mut l = Learner::new(cfg);
        let mut c = ctx(3);
        // Node 9 is not an acceptor.
        l.on_message(NodeId(9), ConsensusMsg::Decision { value: 4 }, &mut c);
        l.on_message(NodeId(9), ConsensusMsg::Decision { value: 4 }, &mut c);
        assert_eq!(l.learned(), None);
    }

    #[test]
    fn learned_value_survives_amnesia() {
        use rqs_store::StoreHandle;
        let store = StoreHandle::mem();
        let mut l = Learner::with_store(config(), store.clone());
        let mut c = ctx(4);
        l.on_message(NodeId(0), ConsensusMsg::Decision { value: 4 }, &mut c);
        l.on_message(NodeId(1), ConsensusMsg::Decision { value: 4 }, &mut c);
        assert_eq!(l.learned().map(|(v, _)| v), Some(4));
        assert_eq!(store.stats().appends, 1, "journaled exactly once");

        let replayed = l.restore_state();
        assert_eq!(replayed, 1);
        assert_eq!(l.learned(), Some((4, Time(4))), "value and time survive");
        // The pull timer does not re-arm for a learner that remembers.
        let mut c2 = ctx(5);
        l.on_message(NodeId(0), ConsensusMsg::Decision { value: 4 }, &mut c2);
        l.save_state();
        assert_eq!(l.restore_state(), 0, "snapshot compacts the log");
        assert_eq!(l.learned().map(|(v, _)| v), Some(4));
    }

    #[test]
    fn pull_loop_runs_until_learned() {
        let cfg = config();
        let mut l = Learner::new(cfg);
        let mut c = ctx(0);
        // First traffic arms the pull timer.
        l.on_message(
            NodeId(0),
            ConsensusMsg::Update {
                step: 1,
                value: 7,
                view: 0,
                quorum: None,
            },
            &mut c,
        );
        let (_, token) = c.armed_timers()[0];
        let mut c2 = ctx(PULL_INTERVAL);
        l.on_timer(token, &mut c2);
        let pulls = c2
            .sent()
            .iter()
            .filter(|(_, m)| matches!(m, ConsensusMsg::DecisionPull))
            .count();
        assert_eq!(pulls, 4);
        assert_eq!(c2.armed_timers().len(), 1, "re-armed while unlearned");
        // After learning, the timer is not re-armed.
        l.learn(7, Time(20));
        let (_, token2) = c2.armed_timers()[0];
        let mut c3 = ctx(2 * PULL_INTERVAL);
        l.on_timer(token2, &mut c3);
        assert!(c3.sent().is_empty());
        assert!(c3.armed_timers().is_empty());
    }
}
