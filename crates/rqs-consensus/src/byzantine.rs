//! Byzantine acceptor behaviours for fault injection (Theorem 6 /
//! Fig. 16 reproductions and robustness tests).

use crate::types::ConsensusMsg;
use rqs_sim::{Automaton, Context, NodeId};
use std::any::Any;

/// An acceptor that never sends anything.
#[derive(Clone, Debug, Default)]
pub struct SilentAcceptor;

impl Automaton<ConsensusMsg> for SilentAcceptor {
    fn on_message(&mut self, _f: NodeId, _m: ConsensusMsg, _c: &mut Context<ConsensusMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A fully scriptable Byzantine acceptor.
pub struct ScriptedAcceptor {
    #[allow(clippy::type_complexity)]
    script: Box<dyn FnMut(NodeId, ConsensusMsg, &mut Context<ConsensusMsg>) + 'static>,
}

impl ScriptedAcceptor {
    /// Wraps a behaviour closure.
    pub fn new(
        script: impl FnMut(NodeId, ConsensusMsg, &mut Context<ConsensusMsg>) + 'static,
    ) -> Self {
        ScriptedAcceptor {
            script: Box::new(script),
        }
    }

    /// An equivocator: echoes `update1⟨v_for(sender), view, ∅⟩` back with a
    /// value chosen per destination — the classic split-vote behaviour.
    pub fn equivocating_update1(
        targets_a: Vec<NodeId>,
        value_a: u64,
        targets_b: Vec<NodeId>,
        value_b: u64,
    ) -> Self {
        ScriptedAcceptor::new(move |_from, msg, ctx| {
            if let ConsensusMsg::Prepare { view, .. } = msg {
                ctx.broadcast(
                    targets_a.iter().copied(),
                    ConsensusMsg::Update {
                        step: 1,
                        value: value_a,
                        view,
                        quorum: None,
                    },
                );
                ctx.broadcast(
                    targets_b.iter().copied(),
                    ConsensusMsg::Update {
                        step: 1,
                        value: value_b,
                        view,
                        quorum: None,
                    },
                );
            }
        })
    }
}

impl std::fmt::Debug for ScriptedAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedAcceptor").finish_non_exhaustive()
    }
}

impl Automaton<ConsensusMsg> for ScriptedAcceptor {
    fn on_message(&mut self, from: NodeId, msg: ConsensusMsg, ctx: &mut Context<ConsensusMsg>) {
        (self.script)(from, msg, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_sim::Time;

    #[test]
    fn silent_acceptor_is_silent() {
        let mut a = SilentAcceptor;
        let mut c = Context::new(NodeId(0), Time::ZERO, 0);
        a.on_message(NodeId(1), ConsensusMsg::Sync, &mut c);
        assert!(c.sent().is_empty());
    }

    #[test]
    fn equivocator_splits_votes() {
        let mut a =
            ScriptedAcceptor::equivocating_update1(vec![NodeId(10)], 1, vec![NodeId(11)], 2);
        let mut c = Context::new(NodeId(0), Time::ZERO, 0);
        a.on_message(
            NodeId(5),
            ConsensusMsg::Prepare {
                value: 1,
                view: 0,
                v_proof: None,
                quorum: None,
            },
            &mut c,
        );
        assert_eq!(c.sent().len(), 2);
        let to_10 = c.sent().iter().find(|(n, _)| *n == NodeId(10)).unwrap();
        let to_11 = c.sent().iter().find(|(n, _)| *n == NodeId(11)).unwrap();
        match (&to_10.1, &to_11.1) {
            (ConsensusMsg::Update { value: v1, .. }, ConsensusMsg::Update { value: v2, .. }) => {
                assert_eq!((*v1, *v2), (1, 2));
            }
            other => panic!("{other:?}"),
        }
        assert!(format!("{a:?}").contains("ScriptedAcceptor"));
    }
}
