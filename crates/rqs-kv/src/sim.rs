//! Deterministic simulated deployment of the KV service.
//!
//! [`KvSim`] builds a [`World`] with one [`KvServer`] per universe member
//! and `clients` [`KvClient`]s owning disjoint object ranges, drives a
//! generated workload in batched waves, and checks *every per-object
//! history* against the single-register atomicity checker — atomicity is
//! a local (per-object) property, so the multi-object service is correct
//! iff each object's history is.

use crate::client::{KvClient, KvOp, KvOutcome};
use crate::messages::KvBatch;
use crate::metrics::KvRunStats;
use crate::object::{ObjectId, ShardMap};
use crate::server::{ByzantineMode, KvByzantineServer, KvServer};
use crate::workload::{per_client, take_wave, WorkloadOp};
use rqs_core::Rqs;
use rqs_sim::{Envelope, FatePolicy, NetworkScript, NodeId, World};
use rqs_storage::atomicity::{check_atomicity, AtomicityViolation, OpRecord};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// An atomicity violation on one object of the KV service.
#[derive(Clone, Debug)]
pub struct KvAtomicityViolation {
    /// The object whose history is not linearizable.
    pub object: ObjectId,
    /// The underlying single-register violation.
    pub violation: AtomicityViolation,
}

impl core::fmt::Display for KvAtomicityViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "object {}: {}", self.object, self.violation)
    }
}

impl std::error::Error for KvAtomicityViolation {}

/// A simulated KV deployment.
pub struct KvSim {
    world: World<KvBatch>,
    shard: ShardMap,
    servers: Vec<NodeId>,
    clients: Vec<NodeId>,
    /// Protocol messages carried inside envelopes (shared with the fate
    /// policy closure that counts them).
    items_sent: Rc<Cell<usize>>,
    /// `(client index, outcome)` pairs harvested after each run.
    completed: Vec<(usize, KvOutcome)>,
}

impl KvSim {
    /// Builds a synchronous-network deployment: one multi-object server
    /// per universe member, `clients` clients owning `objects` objects
    /// round-robin.
    pub fn new(rqs: Rqs, objects: usize, clients: usize) -> Self {
        Self::with_script(rqs, objects, clients, NetworkScript::synchronous())
    }

    /// Builds a deployment with a custom network script.
    pub fn with_script(
        rqs: Rqs,
        objects: usize,
        clients: usize,
        script: NetworkScript,
    ) -> Self {
        let rqs = Arc::new(rqs);
        let shard = ShardMap::new(objects, clients);
        let items_sent = Rc::new(Cell::new(0usize));
        let counter = items_sent.clone();
        let mut script = script;
        let policy = move |env: &Envelope<KvBatch>| {
            counter.set(counter.get() + env.msg.len());
            script.fate(env)
        };
        let mut world = World::new(policy);
        let servers: Vec<NodeId> = (0..rqs.universe_size())
            .map(|_| world.add_node(Box::new(KvServer::new())))
            .collect();
        let client_ids: Vec<NodeId> = (0..clients)
            .map(|c| {
                world.add_node(Box::new(KvClient::new(
                    rqs.clone(),
                    servers.clone(),
                    shard.owned_by(c),
                )))
            })
            .collect();
        KvSim {
            world,
            shard,
            servers,
            clients: client_ids,
            items_sent,
            completed: Vec::new(),
        }
    }

    /// The shard map in use.
    pub fn shard(&self) -> &ShardMap {
        &self.shard
    }

    /// Node ids of the servers (universe order).
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The underlying world (crash injection, tracing, inspection).
    pub fn world_mut(&mut self) -> &mut World<KvBatch> {
        &mut self.world
    }

    /// Replaces server `idx` with a Byzantine automaton behaving per
    /// `mode` on every object.
    pub fn make_byzantine(&mut self, idx: usize, mode: ByzantineMode) {
        self.world
            .replace_node(self.servers[idx], Box::new(KvByzantineServer::new(mode)));
    }

    /// Drives a workload to completion in waves of at most `batch`
    /// operations per client, returning run metrics.
    ///
    /// Within a wave each client launches its next `batch` operations in
    /// a single step (so their round-1 messages share envelopes), with at
    /// most one in-flight operation per `(object, lane)` — the
    /// well-formedness the single-object automata require. Cross-client
    /// contention (reads racing the owner's writes) is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the workload cannot complete (no correct quorum) or if
    /// `batch == 0`.
    pub fn run_workload(&mut self, ops: &[WorkloadOp], batch: usize) -> KvRunStats {
        assert!(batch > 0, "batch size must be positive");
        let mut queues: Vec<VecDeque<KvOp>> = per_client(self.clients.len(), ops)
            .into_iter()
            .map(VecDeque::from)
            .collect();
        let start_tick = self.world.now();
        let envelopes_before = self.world.stats().messages_sent;
        let items_before = self.items_sent.get();
        let before_counts: Vec<usize> = self
            .clients
            .iter()
            .map(|&c| self.world.node_as::<KvClient>(c).outcomes().len())
            .collect();

        loop {
            let mut launched = false;
            for (ci, queue) in queues.iter_mut().enumerate() {
                let wave = take_wave(queue, batch);
                if !wave.is_empty() {
                    launched = true;
                    self.world
                        .invoke::<KvClient>(self.clients[ci], |c, ctx| c.start_ops(wave, ctx));
                }
            }
            if !launched {
                break;
            }
            let ids = self.clients.clone();
            let done = self
                .world
                .run_until(|w| ids.iter().all(|&c| w.node_as::<KvClient>(c).in_flight() == 0));
            assert!(done, "workload wave did not complete (no correct quorum?)");
        }

        // Harvest the new outcomes.
        let mut stats = KvRunStats::default();
        for (ci, &node) in self.clients.iter().enumerate() {
            let outs = self.world.node_as::<KvClient>(node).outcomes();
            for out in &outs[before_counts[ci]..] {
                stats.record_outcome(out);
                self.completed.push((ci, out.clone()));
            }
        }
        stats.duration_units = (self.world.now() - start_tick).max(1);
        stats.envelopes = self.world.stats().messages_sent - envelopes_before;
        stats.items = self.items_sent.get() - items_before;
        stats
    }

    /// All completed operations so far, as `(client, outcome)` pairs.
    pub fn completed(&self) -> &[(usize, KvOutcome)] {
        &self.completed
    }

    /// The per-object operation logs (for checking or inspection).
    pub fn per_object_records(&self) -> BTreeMap<ObjectId, Vec<OpRecord>> {
        let mut map: BTreeMap<ObjectId, Vec<OpRecord>> = BTreeMap::new();
        for (ci, out) in &self.completed {
            map.entry(out.object).or_default().push(OpRecord {
                kind: out.kind,
                client: *ci,
                pair: out.pair.clone(),
                invoked_at: out.invoked_at,
                completed_at: out.completed_at,
            });
        }
        map
    }

    /// Checks every object's history for atomicity.
    ///
    /// # Errors
    ///
    /// Returns the first violating object.
    pub fn check_atomicity(&self) -> Result<(), KvAtomicityViolation> {
        for (object, records) in self.per_object_records() {
            check_atomicity(&records)
                .map_err(|violation| KvAtomicityViolation { object, violation })?;
        }
        Ok(())
    }

    /// A canonical, human-readable operation trace: one line per
    /// completed operation in completion order per client. Two runs with
    /// the same seed must produce byte-identical traces.
    pub fn op_trace(&self) -> Vec<String> {
        self.completed
            .iter()
            .map(|(ci, o)| {
                format!(
                    "c{} {} {} {} rounds={} [{},{}]",
                    ci,
                    match o.kind {
                        rqs_storage::OpKind::Write => "W",
                        rqs_storage::OpKind::Read => "R",
                    },
                    o.object,
                    o.pair,
                    o.rounds,
                    o.invoked_at,
                    o.completed_at,
                )
            })
            .collect()
    }

    /// Current simulated time in ticks.
    pub fn now_ticks(&self) -> u64 {
        self.world.now().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use rqs_core::threshold::ThresholdConfig;
    use rqs_storage::OpKind;

    fn small_sim() -> KvSim {
        KvSim::new(
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
            8,
            2,
        )
    }

    #[test]
    fn mixed_workload_completes_and_is_atomic() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 60, 11);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 60);
        assert!(stats.rounds.fast_path_ratio() > 0.5, "sync fast path");
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn batching_reduces_envelopes_per_op() {
        let cfg = WorkloadConfig::mixed(8, 2, 64, 3);
        let ops = generate(&cfg);
        let run = |batch: usize| {
            let mut sim = small_sim();
            let stats = sim.run_workload(&ops, batch);
            sim.check_atomicity().unwrap();
            stats.envelopes_per_op()
        };
        let unbatched = run(1);
        let batched = run(8);
        assert!(
            batched < unbatched,
            "batch=8 ({batched:.2}) must beat batch=1 ({unbatched:.2})"
        );
    }

    #[test]
    fn reads_see_written_values() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig {
            read_percent: 40,
            ..WorkloadConfig::mixed(8, 2, 80, 5)
        };
        sim.run_workload(&generate(&cfg), 4);
        sim.check_atomicity().unwrap();
        // Every non-initial read pair matches some write of that object.
        let per_object = sim.per_object_records();
        for records in per_object.values() {
            for r in records.iter().filter(|r| r.kind == OpKind::Read) {
                if !r.pair.is_initial() {
                    assert!(records
                        .iter()
                        .any(|w| w.kind == OpKind::Write && w.pair == r.pair));
                }
            }
        }
    }

    #[test]
    fn byzantine_server_tolerated() {
        let mut sim = KvSim::new(
            ThresholdConfig::byzantine_fast(1).build().unwrap(),
            16,
            4,
        );
        sim.make_byzantine(0, ByzantineMode::Forge);
        let cfg = WorkloadConfig::mixed(16, 4, 96, 9);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 96);
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn mute_byzantine_server_tolerated() {
        let mut sim = KvSim::new(
            ThresholdConfig::byzantine_fast(1).build().unwrap(),
            8,
            2,
        );
        sim.make_byzantine(3, ByzantineMode::Mute);
        let cfg = WorkloadConfig::mixed(8, 2, 40, 13);
        let stats = sim.run_workload(&generate(&cfg), 2);
        assert_eq!(stats.ops, 40);
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn trace_is_nonempty_and_tagged() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 10, 1);
        sim.run_workload(&generate(&cfg), 2);
        let trace = sim.op_trace();
        assert_eq!(trace.len(), 10);
        assert!(trace.iter().all(|l| l.starts_with('c')));
    }
}
