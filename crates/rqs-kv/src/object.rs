//! Object identities and the shard map.
//!
//! The KV service multiplexes many independent SWMR registers ("objects")
//! over one server set. Keys hash to objects, and every object is owned by
//! exactly one client — the only process allowed to write it — so the
//! paper's single-writer assumption holds *per object* while the service
//! as a whole has many concurrent writers.

use core::fmt;

/// Identifier of one logical object (one SWMR register).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Zero-based index (objects are numbered densely from 0).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Static partition of the key space into objects and of the objects into
/// per-client ownership ranges.
///
/// Ownership is round-robin (`object i` belongs to `client i mod clients`),
/// so the owned sets are disjoint and cover all objects — the structural
/// guarantee that keeps each object SWMR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    objects: usize,
    clients: usize,
}

impl ShardMap {
    /// A shard map over `objects` objects owned by `clients` clients.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(objects: usize, clients: usize) -> Self {
        assert!(objects > 0, "need at least one object");
        assert!(clients > 0, "need at least one client");
        ShardMap { objects, clients }
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.objects
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Maps a string key to its object (64-bit FNV-1a hash mod object
    /// count).
    pub fn object_of_key(&self, key: &str) -> ObjectId {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        ObjectId(h % self.objects as u64)
    }

    /// The client owning (allowed to write) `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is outside the map.
    pub fn owner(&self, obj: ObjectId) -> usize {
        assert!(obj.index() < self.objects, "object {obj} out of range");
        obj.index() % self.clients
    }

    /// All objects owned by `client`, in ascending order.
    pub fn owned_by(&self, client: usize) -> Vec<ObjectId> {
        (0..self.objects)
            .filter(|o| o % self.clients == client)
            .map(|o| ObjectId(o as u64))
            .collect()
    }

    /// Iterator over every object id.
    pub fn all_objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.objects as u64).map(ObjectId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_partitions_objects() {
        let map = ShardMap::new(16, 4);
        let mut seen = [false; 16];
        for c in 0..4 {
            for obj in map.owned_by(c) {
                assert_eq!(map.owner(obj), c);
                assert!(!seen[obj.index()], "object owned twice");
                seen[obj.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every object owned");
    }

    #[test]
    fn keys_hash_stably_and_in_range() {
        let map = ShardMap::new(7, 2);
        for key in ["a", "b", "user:42", ""] {
            let o1 = map.object_of_key(key);
            let o2 = map.object_of_key(key);
            assert_eq!(o1, o2);
            assert!(o1.index() < 7);
        }
    }

    #[test]
    fn display_and_index() {
        assert_eq!(ObjectId(3).to_string(), "o3");
        assert_eq!(ObjectId(3).index(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_objects_rejected() {
        ShardMap::new(0, 1);
    }
}
