//! Seeded, deterministic workload generation.
//!
//! A workload is a flat list of operations, each pre-assigned to a client:
//! writes go to the object's owner (preserving SWMR), reads to a uniformly
//! random client. Object choice follows a configurable hot-set skew. The
//! whole list is a pure function of the seed, which is what makes
//! experiment runs reproducible from the command line.

use crate::client::KvOp;
use crate::object::{ObjectId, ShardMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqs_storage::{OpKind, Value};

/// Parameters of a generated workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Number of objects (registers) in the key space.
    pub objects: usize,
    /// Number of clients; each owns `objects / clients` (±1) objects.
    pub clients: usize,
    /// Total operations to generate.
    pub ops: usize,
    /// Percentage of operations that are reads (0–100).
    pub read_percent: u8,
    /// Probability that an operation targets the hot set (the first
    /// ~10 % of objects). `0.0` is uniform; `0.9` is heavily skewed.
    pub skew: f64,
    /// RNG seed; identical seeds generate identical workloads.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A small mixed workload (50 % reads, mild skew) for `objects`
    /// objects, `clients` clients and `ops` operations.
    pub fn mixed(objects: usize, clients: usize, ops: usize, seed: u64) -> Self {
        WorkloadConfig {
            objects,
            clients,
            ops,
            read_percent: 50,
            skew: 0.3,
            seed,
        }
    }

    /// The shard map this workload runs over.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.objects, self.clients)
    }
}

/// One generated operation: which client performs what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadOp {
    /// The client that performs the operation.
    pub client: usize,
    /// The operation itself.
    pub op: KvOp,
}

/// Generates the operation list for `cfg` (a pure function of `cfg`).
///
/// Written values encode `(object, sequence)` so every write is unique
/// per object, which the per-object atomicity checker relies on.
///
/// # Panics
///
/// Panics if `read_percent > 100` or `skew ∉ [0, 1]`.
pub fn generate(cfg: &WorkloadConfig) -> Vec<WorkloadOp> {
    assert!(cfg.read_percent <= 100, "read_percent is a percentage");
    assert!(
        (0.0..=1.0).contains(&cfg.skew),
        "skew must be a probability"
    );
    let map = cfg.shard_map();
    let hot = cfg.objects.div_ceil(10).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut next_seq: Vec<u64> = vec![0; cfg.objects];
    let mut ops = Vec::with_capacity(cfg.ops);
    for _ in 0..cfg.ops {
        let object = if cfg.skew > 0.0 && rng.gen_bool(cfg.skew) {
            ObjectId(rng.gen_range(0..hot) as u64)
        } else {
            ObjectId(rng.gen_range(0..cfg.objects) as u64)
        };
        let is_read = rng.gen_range(0u8..100) < cfg.read_percent;
        if is_read {
            ops.push(WorkloadOp {
                client: rng.gen_range(0..cfg.clients),
                op: KvOp::Read { object },
            });
        } else {
            let seq = next_seq[object.index()];
            next_seq[object.index()] += 1;
            // Unique per object: high half the object id, low half the
            // per-object write sequence number.
            let encoded = (object.0 << 32) | (seq & 0xFFFF_FFFF);
            ops.push(WorkloadOp {
                client: map.owner(object),
                op: KvOp::Write {
                    object,
                    value: Value::from(encoded | 0x8000_0000_0000_0000),
                },
            });
        }
    }
    ops
}

/// Splits a generated workload into per-client queues (index = client).
///
/// # Panics
///
/// Panics if an operation names a client `≥ clients`.
pub fn per_client(clients: usize, ops: &[WorkloadOp]) -> Vec<Vec<KvOp>> {
    let mut queues: Vec<Vec<KvOp>> = vec![Vec::new(); clients];
    for wop in ops {
        assert!(
            wop.client < clients,
            "workload op for client {} but the deployment has {clients} clients",
            wop.client
        );
        queues[wop.client].push(wop.op.clone());
    }
    queues
}

/// Pops one client's next wave off its queue: up to `batch` operations
/// with at most one per `(object, kind)` — the well-formedness the
/// single-object automata require (one in-flight operation per lane).
///
/// Both deployment drivers ([`KvSim`](crate::KvSim) and
/// [`RtKv`](crate::RtKv)) build their waves through this function, so
/// the invariant cannot drift between substrates.
pub fn take_wave(queue: &mut std::collections::VecDeque<KvOp>, batch: usize) -> Vec<KvOp> {
    take_wave_depth(queue, batch, 1)
}

/// [`take_wave`] generalised to pipelined clients: up to `depth`
/// operations per `(object, kind)` lane may ride one wave (the client
/// backlogs all but the first). `take_wave_depth(q, b, 1)` is exactly
/// `take_wave(q, b)`.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn take_wave_depth(
    queue: &mut std::collections::VecDeque<KvOp>,
    batch: usize,
    depth: usize,
) -> Vec<KvOp> {
    assert!(depth >= 1, "pipeline depth must be at least 1");
    let mut wave: Vec<KvOp> = Vec::new();
    let mut used: std::collections::BTreeMap<(crate::ObjectId, OpKind), usize> =
        std::collections::BTreeMap::new();
    while wave.len() < batch {
        let Some(front) = queue.front() else { break };
        let key = (front.object(), front.kind());
        let n = used.entry(key).or_insert(0);
        if *n >= depth {
            break; // lane full for this wave: defer to the next one
        }
        *n += 1;
        wave.push(queue.pop_front().expect("front exists"));
    }
    wave
}

/// Counts reads/writes in a workload (reporting helper).
pub fn mix(ops: &[WorkloadOp]) -> (usize, usize) {
    let reads = ops.iter().filter(|o| o.op.kind() == OpKind::Read).count();
    (reads, ops.len() - reads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let cfg = WorkloadConfig::mixed(16, 4, 100, 7);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seed_different_workload() {
        let a = WorkloadConfig::mixed(16, 4, 100, 7);
        let b = WorkloadConfig { seed: 8, ..a };
        assert_ne!(generate(&a), generate(&b));
    }

    #[test]
    fn writes_go_to_owners() {
        let cfg = WorkloadConfig::mixed(16, 4, 200, 3);
        let map = cfg.shard_map();
        for wop in generate(&cfg) {
            if let KvOp::Write { object, .. } = wop.op {
                assert_eq!(wop.client, map.owner(object));
            }
        }
    }

    #[test]
    fn read_percent_respected_roughly() {
        let cfg = WorkloadConfig {
            read_percent: 100,
            ..WorkloadConfig::mixed(8, 2, 50, 1)
        };
        let (reads, writes) = mix(&generate(&cfg));
        assert_eq!((reads, writes), (50, 0));
        let cfg = WorkloadConfig {
            read_percent: 0,
            ..cfg
        };
        let (reads, writes) = mix(&generate(&cfg));
        assert_eq!((reads, writes), (0, 50));
    }

    #[test]
    fn skew_concentrates_on_hot_set() {
        let cfg = WorkloadConfig {
            skew: 0.9,
            ..WorkloadConfig::mixed(100, 4, 1000, 5)
        };
        let ops = generate(&cfg);
        let hot_hits = ops.iter().filter(|o| o.op.object().index() < 10).count();
        assert!(
            hot_hits > 700,
            "expected hot-set concentration, got {hot_hits}"
        );
    }

    #[test]
    fn per_client_partitions_everything() {
        let cfg = WorkloadConfig::mixed(16, 4, 120, 2);
        let ops = generate(&cfg);
        let queues = per_client(cfg.clients, &ops);
        assert_eq!(queues.iter().map(Vec::len).sum::<usize>(), 120);
    }

    #[test]
    fn take_wave_defers_duplicate_object_lanes() {
        use crate::ObjectId;
        use std::collections::VecDeque;
        let mut q: VecDeque<KvOp> = VecDeque::from(vec![
            KvOp::Read {
                object: ObjectId(0),
            },
            KvOp::Write {
                object: ObjectId(0),
                value: Value::from(1u64),
            },
            KvOp::Read {
                object: ObjectId(0),
            }, // same (object, lane) as #1
            KvOp::Read {
                object: ObjectId(1),
            },
        ]);
        let wave = take_wave(&mut q, 8);
        // Read o0 + write o0 are distinct lanes; the second read of o0
        // blocks the wave (queue order is preserved).
        assert_eq!(wave.len(), 2);
        assert_eq!(q.len(), 2);
        let wave2 = take_wave(&mut q, 8);
        assert_eq!(wave2.len(), 2);
        assert!(take_wave(&mut q, 8).is_empty());
    }

    #[test]
    fn take_wave_depth_allows_up_to_depth_per_lane() {
        use crate::ObjectId;
        use std::collections::VecDeque;
        let reads = |n: usize| {
            VecDeque::from(vec![
                KvOp::Read {
                    object: ObjectId(0),
                };
                n
            ])
        };
        // Depth 1 is exactly take_wave.
        let mut a = reads(4);
        let mut b = reads(4);
        assert_eq!(take_wave_depth(&mut a, 8, 1), take_wave(&mut b, 8));
        assert_eq!(a.len(), b.len());
        // Depth 3 lets three same-lane ops ride one wave, defers the 4th.
        let mut q = reads(4);
        let wave = take_wave_depth(&mut q, 8, 3);
        assert_eq!(wave.len(), 3);
        assert_eq!(q.len(), 1);
        // The batch cap still applies.
        let mut q = reads(4);
        assert_eq!(take_wave_depth(&mut q, 2, 3).len(), 2);
    }

    #[test]
    #[should_panic(expected = "but the deployment has")]
    fn per_client_rejects_out_of_range_client() {
        let ops = vec![WorkloadOp {
            client: 5,
            op: KvOp::Read {
                object: ObjectId(0),
            },
        }];
        per_client(2, &ops);
    }
}
