//! # rqs-kv — a sharded, batched multi-object KV service over RQS storage
//!
//! The storage algorithm of *Refined Quorum Systems* (Guerraoui &
//! Vukolić, §3) is a single SWMR register. This crate turns it into a
//! key-value *service*: many registers ("objects") multiplexed over one
//! server set, many concurrent clients, and per-destination message
//! batching — while the per-object protocol remains byte-for-byte the
//! paper's algorithm (the unmodified [`Writer`](rqs_storage::Writer) and
//! [`Reader`](rqs_storage::Reader) automata run inside every client).
//!
//! Architecture:
//!
//! - [`object`] — [`ObjectId`] and the [`ShardMap`]: keys hash to
//!   objects; each object is owned (written) by exactly one client, so
//!   the SWMR assumption holds per object;
//! - [`messages`] — [`KvBatch`] and the shared [`BatchAccumulator`]:
//!   every envelope carries all the object-tagged protocol messages one
//!   step produced for one destination, so `B` concurrent operations
//!   cost far fewer than `B×` envelopes;
//! - [`server`] — [`KvServer`]: per-object benign server state behind one
//!   node id, plus Byzantine variants for fault injection;
//! - [`client`] — [`KvClient`]: multiplexes per-object writers/readers,
//!   routes timers, batches sends, logs outcomes;
//! - [`workload`] — seeded, deterministic workload generation (read/write
//!   mix, hot-set skew);
//! - [`metrics`] — throughput, round histograms, fast-path ratio,
//!   envelopes-per-operation;
//! - [`deploy`] — [`KvDeployment`], the **one** deployment driver,
//!   generic over [`Substrate`](rqs_sim::Substrate): [`KvSim`] (the
//!   deterministic world) and [`RtKv`] (the threaded runtime) are
//!   aliases of it, and declarative [`Scenario`](rqs_sim::Scenario)
//!   fault injection works identically on both.
//!
//! ## Quick start
//!
//! ```
//! use rqs_core::threshold::ThresholdConfig;
//! use rqs_kv::{KvSim, WorkloadConfig, workload};
//!
//! // The paper's Byzantine instantiation, 16 objects, 4 clients.
//! let rqs = ThresholdConfig::byzantine_fast(1).build()?;
//! let mut kv = KvSim::new(rqs, 16, 4);
//! let cfg = WorkloadConfig::mixed(16, 4, 64, 7);
//! let stats = kv.run_workload(&workload::generate(&cfg), 4);
//! assert_eq!(stats.ops, 64);
//! kv.check_atomicity()?; // every per-object history linearizes
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod deploy;
pub mod messages;
pub mod metrics;
pub mod object;
pub mod server;
pub mod workload;

pub use client::{KvClient, KvOp, KvOutcome, RetryPolicy, RetryStats};
pub use deploy::{KvAtomicityViolation, KvDeployment, KvSim, RtKv};
pub use messages::{BatchAccumulator, KvBatch, KvItem, Lane};
pub use metrics::{KvRunStats, RoundHistogram};
pub use object::{ObjectId, ShardMap};
pub use server::{ByzantineMode, KvByzantineServer, KvServer};
pub use workload::{WorkloadConfig, WorkloadOp};
