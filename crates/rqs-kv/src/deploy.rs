//! The one KV deployment driver, generic over the execution substrate.
//!
//! [`KvDeployment`] builds one [`KvServer`] per universe member and
//! `clients` [`KvClient`]s owning disjoint object ranges, drives a
//! generated workload in batched waves, and checks *every per-object
//! history* against the single-register atomicity checker — atomicity is
//! a local (per-object) property, so the multi-object service is correct
//! iff each object's history is.
//!
//! The driver is written once against [`Substrate`]; the historical
//! deployment types are aliases of it:
//!
//! - [`KvSim`] = `KvDeployment<World<KvBatch>>` — deterministic
//!   simulation, byte-identical traces per seed;
//! - [`RtKv`] = `KvDeployment<Runtime<KvBatch>>` — node-per-thread over
//!   channels, real wall-clock latency.
//!
//! Fault injection goes through a declarative
//! [`Scenario`](rqs_sim::Scenario): partitions with heal times, lossy or
//! duplicating links, crash-restart plans and Byzantine swap-ins run on
//! *both* substrates from the same description.

use crate::client::{KvClient, KvOp, KvOutcome, RetryStats};
use crate::messages::KvBatch;
use crate::metrics::KvRunStats;
use crate::object::{ObjectId, ShardMap};
use crate::server::{ByzantineMode, KvByzantineServer, KvServer};
use crate::workload::{per_client, take_wave_depth, WorkloadOp};
use rqs_core::Rqs;
use rqs_obs::{classify, dump_json, NopTracer, Obs, ObsHandle, TraceEvent};
use rqs_runtime::{CheckerSidecar, Runtime, SidecarReport};
use rqs_sim::{
    Automaton, CrashMode, NodeId, Scenario, Substrate, SubstrateConfig, World, DEFAULT_AWAIT_STEPS,
};
use rqs_storage::atomicity::{AtomicityViolation, OpRecord};
use rqs_storage::checker::{AtomicityChecker, CheckerStats};
use rqs_store::{StoreHandle, StoreStats};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// An atomicity violation on one object of the KV service.
#[derive(Clone, Debug)]
pub struct KvAtomicityViolation {
    /// The object whose history is not linearizable.
    pub object: ObjectId,
    /// The underlying single-register violation.
    pub violation: AtomicityViolation,
}

impl core::fmt::Display for KvAtomicityViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "object {}: {}", self.object, self.violation)
    }
}

impl std::error::Error for KvAtomicityViolation {}

/// One crash-to-restart window in protocol ticks (`end == None` while
/// the node is still down), used to attribute slow ops to recovery or
/// server failure.
#[derive(Clone, Copy, Debug)]
struct FaultWindow {
    node: usize,
    start: u64,
    end: Option<u64>,
}

/// A KV deployment on any [`Substrate`].
pub struct KvDeployment<S: Substrate<KvBatch>> {
    sub: S,
    shard: ShardMap,
    servers: Vec<NodeId>,
    clients: Vec<NodeId>,
    /// `(client index, outcome)` pairs harvested after each run (empty
    /// when `retain_outcomes(false)` keeps memory flat on soak runs).
    completed: Vec<(usize, KvOutcome)>,
    /// Per-client harvest cursors into the clients' outcome logs.
    harvested: Vec<usize>,
    /// One streaming atomicity checker per object, fed at every wave
    /// boundary and retired to the settled horizon (bounded memory).
    checkers: BTreeMap<ObjectId, AtomicityChecker>,
    /// Whether harvested outcomes are kept in `completed`.
    retain_outcomes: bool,
    /// When set, harvested records go to this checker thread instead of
    /// the in-line `checkers` (threaded-runtime sidecar mode).
    sidecar: Option<CheckerSidecar>,
    /// Per-server durable stores (empty for volatile deployments).
    stores: Vec<StoreHandle>,
    /// Shared structured-trace sink (the zero-overhead [`NopTracer`]
    /// unless the deployment was built with
    /// [`with_setup_traced`](Self::with_setup_traced)).
    tracer: ObsHandle,
    /// Crash windows (scenario plans plus manual crash/restart calls)
    /// that slow-path attribution overlaps op windows against.
    fault_windows: Vec<FaultWindow>,
    /// Per-lane pipeline depth driven into every client (1 = classic
    /// one-op-per-lane waves).
    pipeline: usize,
    /// Server indices currently running Byzantine automatons (worker
    /// pools skip them: they are not [`KvServer`]s).
    byzantine: BTreeSet<usize>,
    /// Shard workers per benign server (0 = unpooled node-thread
    /// processing; only ever nonzero on the threaded runtime).
    workers: usize,
}

/// The deterministic simulated KV deployment (back-compat alias).
pub type KvSim = KvDeployment<World<KvBatch>>;

/// The threaded KV deployment (back-compat alias).
pub type RtKv = KvDeployment<Runtime<KvBatch>>;

impl<S: Substrate<KvBatch>> KvDeployment<S> {
    /// Builds a fault-free deployment: one multi-object server per
    /// universe member, `clients` clients owning `objects` objects
    /// round-robin.
    pub fn new(rqs: Rqs, objects: usize, clients: usize) -> Self {
        Self::with_scenario(rqs, objects, clients, Scenario::default())
    }

    /// Builds a deployment under a fault scenario; the scenario's
    /// `byzantine` indices become forging Byzantine servers.
    pub fn with_scenario(rqs: Rqs, objects: usize, clients: usize, scenario: Scenario) -> Self {
        Self::with_setup(rqs, objects, clients, scenario, rqs_sim::DEFAULT_TICK)
    }

    /// Builds with a scenario and an explicit wall-clock tick length
    /// (ignored by the simulator).
    pub fn with_setup(
        rqs: Rqs,
        objects: usize,
        clients: usize,
        scenario: Scenario,
        tick: Duration,
    ) -> Self {
        Self::with_setup_stores(rqs, objects, clients, scenario, tick, Vec::new())
    }

    /// Builds a durable deployment: every server journals all objects to
    /// a fresh deterministic in-memory store, so the scenario may use
    /// [`CrashMode::Amnesia`] crash plans.
    pub fn durable_with_scenario(
        rqs: Rqs,
        objects: usize,
        clients: usize,
        scenario: Scenario,
    ) -> Self {
        let stores = (0..rqs.universe_size())
            .map(|_| StoreHandle::mem())
            .collect();
        Self::with_setup_stores(
            rqs,
            objects,
            clients,
            scenario,
            rqs_sim::DEFAULT_TICK,
            stores,
        )
    }

    /// Builds with explicit per-server stores (`stores[i]` backs server
    /// `i`; servers beyond the vector stay volatile) — the seam the
    /// threaded chaos experiment uses to hand in file-backed stores.
    pub fn with_setup_stores(
        rqs: Rqs,
        objects: usize,
        clients: usize,
        scenario: Scenario,
        tick: Duration,
        stores: Vec<StoreHandle>,
    ) -> Self {
        Self::with_setup_traced(
            rqs,
            objects,
            clients,
            scenario,
            tick,
            stores,
            Arc::new(NopTracer),
        )
    }

    /// Builds with explicit stores **and** a structured-trace sink: the
    /// substrate (deliver/drop, crash/recover), the servers' durable
    /// stores (WAL appends, fsyncs) and every client lane (op lifecycle,
    /// rounds, quorums, retry nudges) emit [`TraceEvent`]s into `tracer`.
    pub fn with_setup_traced(
        rqs: Rqs,
        objects: usize,
        clients: usize,
        scenario: Scenario,
        tick: Duration,
        stores: Vec<StoreHandle>,
        tracer: ObsHandle,
    ) -> Self {
        let rqs = Arc::new(rqs);
        let shard = ShardMap::new(objects, clients);
        let n = rqs.universe_size();
        let server_ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let byzantine = scenario.byzantine.clone();
        let fault_windows = scenario
            .crashes
            .iter()
            .map(|p| FaultWindow {
                node: p.node,
                start: p.at,
                end: p.restart_at,
            })
            .collect();
        for (i, s) in stores.iter().enumerate() {
            s.set_obs(Obs::new(tracer.clone(), i as u64));
        }
        let mut nodes: Vec<Box<dyn Automaton<KvBatch> + Send>> = Vec::new();
        for i in 0..n {
            nodes.push(match stores.get(i) {
                Some(s) => Box::new(KvServer::with_store(s.clone())),
                None => Box::new(KvServer::new()),
            });
        }
        for c in 0..clients {
            let mut client = KvClient::new(rqs.clone(), server_ids.clone(), shard.owned_by(c));
            client.set_obs(Obs::new(tracer.clone(), 0));
            nodes.push(Box::new(client));
        }
        let config = SubstrateConfig::new(nodes)
            .scenario(scenario)
            .sizer(|b: &KvBatch| b.len() as u64)
            .tick(tick)
            .tracer(tracer.clone());
        let mut sub = S::build(config);
        for &idx in &byzantine {
            sub.replace_node(
                server_ids[idx],
                Box::new(KvByzantineServer::new(ByzantineMode::Forge)),
            );
        }
        KvDeployment {
            sub,
            shard,
            servers: server_ids,
            clients: (n..n + clients).map(NodeId).collect(),
            completed: Vec::new(),
            harvested: vec![0; clients],
            checkers: BTreeMap::new(),
            retain_outcomes: true,
            sidecar: None,
            stores,
            tracer,
            fault_windows,
            pipeline: 1,
            byzantine: byzantine.into_iter().collect(),
            workers: 0,
        }
    }

    /// The retained tail of the deployment's trace sink (empty for the
    /// default [`NopTracer`]).
    pub fn obs_events(&self) -> Vec<TraceEvent> {
        self.tracer.snapshot()
    }

    /// Controls whether harvested outcomes accumulate in
    /// [`completed`](Self::completed) (default `true`). Soak runs switch
    /// this off: the streaming checkers keep validating every operation,
    /// but driver memory stays O(wave), not O(history). With retention
    /// off, [`per_object_records`](Self::per_object_records) and
    /// [`op_trace`](Self::op_trace) only see retained history.
    pub fn retain_outcomes(&mut self, retain: bool) {
        self.retain_outcomes = retain;
    }

    /// The shard map in use.
    pub fn shard(&self) -> &ShardMap {
        &self.shard
    }

    /// Node ids of the servers (universe order).
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The underlying substrate (crash injection, stats, scripting).
    pub fn substrate(&mut self) -> &mut S {
        &mut self.sub
    }

    /// Replaces server `idx` with a Byzantine automaton behaving per
    /// `mode` on every object — on either substrate.
    pub fn make_byzantine(&mut self, idx: usize, mode: ByzantineMode) {
        self.byzantine.insert(idx);
        self.sub
            .replace_node(self.servers[idx], Box::new(KvByzantineServer::new(mode)));
    }

    /// Shard workers per benign server (0 = unpooled).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Crashes server `idx` in the given [`CrashMode`] (amnesia requires
    /// a durable deployment or the server restarts empty).
    pub fn crash_server(&mut self, idx: usize, mode: CrashMode) {
        self.fault_windows.push(FaultWindow {
            node: idx,
            start: self.sub.now_ticks().ticks(),
            end: None,
        });
        self.sub.crash_with(self.servers[idx], mode);
    }

    /// Restarts a crashed server.
    pub fn restart_server(&mut self, idx: usize) {
        let now = self.sub.now_ticks().ticks();
        if let Some(w) = self
            .fault_windows
            .iter_mut()
            .rev()
            .find(|w| w.node == idx && w.end.is_none())
        {
            w.end = Some(now);
        }
        self.sub.restart(self.servers[idx]);
    }

    /// Installs a compacting snapshot of server `idx`'s full object bank
    /// into its durable store, truncating its write-ahead log — the
    /// checkpoint that keeps the next recovery's replay bounded by the
    /// deltas since the last checkpoint instead of the full run. No-op
    /// on volatile deployments.
    pub fn checkpoint_server(&mut self, idx: usize) {
        self.sub
            .invoke_on::<KvServer>(self.servers[idx], |s, _| s.save_state());
    }

    /// The per-server durable stores (empty for volatile deployments).
    pub fn server_stores(&self) -> &[StoreHandle] {
        &self.stores
    }

    /// Merged store counters across all servers.
    pub fn store_stats(&self) -> StoreStats {
        let mut acc = StoreStats::default();
        for s in &self.stores {
            acc.merge(&s.stats());
        }
        acc
    }

    /// Sets the retry policy of every client (call before running a
    /// workload; in-flight watchdogs keep their delays).
    pub fn set_retry_policy(&mut self, policy: crate::client::RetryPolicy) {
        for &c in &self.clients.clone() {
            self.sub
                .invoke_on::<KvClient>(c, move |k, _| k.set_retry_policy(policy));
        }
    }

    /// Sets the per-lane pipeline depth of every client (call before
    /// running a workload). Waves grow to `batch × depth` operations so
    /// the extra in-flight slots are actually used; depth 1 restores the
    /// classic one-op-per-lane waves byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn set_pipeline(&mut self, depth: usize) {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline = depth;
        for &c in &self.clients.clone() {
            self.sub
                .invoke_on::<KvClient>(c, move |k, _| k.set_pipeline(depth));
        }
    }

    /// The pipeline depth in force.
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    /// Merged client retry counters (cumulative over the deployment's
    /// lifetime).
    pub fn retry_stats(&self) -> RetryStats {
        let mut acc = RetryStats::default();
        for &c in &self.clients {
            let s = self
                .sub
                .inspect_on::<KvClient, RetryStats>(c, |k| k.retry_stats());
            acc.merge(&s);
        }
        acc
    }

    /// Drives a workload to completion in waves of at most `batch`
    /// operations per client, returning run metrics.
    ///
    /// Within a wave each client launches its next `batch` operations in
    /// a single step (so their round-1 messages share envelopes), with at
    /// most one in-flight operation per `(object, lane)` — the
    /// well-formedness the single-object automata require. Cross-client
    /// contention (reads racing the owner's writes) is preserved. With
    /// [`set_pipeline`](Self::set_pipeline) above 1, waves grow to
    /// `batch × depth` ops and up to `depth` per lane ride each wave (the
    /// clients backlog all but the first and stream them out in program
    /// order as predecessors complete).
    ///
    /// `duration_units` of the returned stats is simulated ticks on the
    /// simulator and wall-clock microseconds on the threaded runtime.
    ///
    /// # Panics
    ///
    /// Panics if the workload cannot complete (no correct quorum) or if
    /// `batch == 0`.
    pub fn run_workload(&mut self, ops: &[WorkloadOp], batch: usize) -> KvRunStats {
        assert!(batch > 0, "batch size must be positive");
        let mut queues: Vec<VecDeque<KvOp>> = per_client(self.clients.len(), ops)
            .into_iter()
            .map(VecDeque::from)
            .collect();
        let units_before = self.sub.elapsed_units();
        let net_before = self.sub.stats();
        let retries_before = self.retry_stats();

        let mut stats = KvRunStats::default();
        let wave_cap = batch.saturating_mul(self.pipeline);
        loop {
            let mut launched = false;
            for (ci, queue) in queues.iter_mut().enumerate() {
                let wave = take_wave_depth(queue, wave_cap, self.pipeline);
                if !wave.is_empty() {
                    launched = true;
                    self.sub
                        .invoke_on::<KvClient>(self.clients[ci], move |c, ctx| {
                            c.start_ops(wave, ctx)
                        });
                }
            }
            if !launched {
                break;
            }
            for &c in &self.clients {
                let done =
                    self.sub
                        .await_on::<KvClient>(c, |k| k.in_flight() == 0, DEFAULT_AWAIT_STEPS);
                if !done {
                    // Before panicking, dump the stuck inner automata as
                    // one structured JSON report with the flight-recorder
                    // tail attached: the rounds and ack sets say which
                    // servers went silent, and the recorded deliver/drop
                    // history says why.
                    let lanes = self
                        .sub
                        .inspect_on::<KvClient, Vec<String>>(c, |k| k.stuck_lanes());
                    let details = [("client", c.0.to_string()), ("lanes", lanes.join(" | "))];
                    eprintln!(
                        "{}",
                        dump_json("stuck-lanes", &details, &self.tracer.snapshot())
                    );
                }
                assert!(done, "KV wave did not complete (no correct quorum?)");
            }
            // Streaming validation: harvest and check the wave *now*,
            // then retire everything the quiescent point proves ordered.
            self.harvest_wave(&mut stats);
        }

        let net_after = self.sub.stats();
        stats.duration_units = (self.sub.elapsed_units() - units_before).max(1);
        stats.envelopes = (net_after.envelopes - net_before.envelopes) as usize;
        stats.items = (net_after.items - net_before.items) as usize;
        for c in self.checkers.values() {
            stats.checker.merge(&c.stats());
        }
        let retries_after = self.retry_stats();
        stats.retries = RetryStats {
            retries_issued: retries_after.retries_issued - retries_before.retries_issued,
            backoff_ticks: retries_after.backoff_ticks - retries_before.backoff_ticks,
            exhausted: retries_after.exhausted - retries_before.exhausted,
        };
        stats
    }

    /// Harvests every client's new outcomes into the run stats and the
    /// per-object streaming checkers (or the sidecar, when enabled), then
    /// advances each checker's retirement watermark: the wave boundary is
    /// a quiescent point, so every future operation is invoked at or
    /// after any completion seen so far.
    fn harvest_wave(&mut self, stats: &mut KvRunStats) {
        for (ci, &node) in self.clients.clone().iter().enumerate() {
            let skip = self.harvested[ci];
            let outs = self
                .sub
                .inspect_on::<KvClient, Vec<KvOutcome>>(node, move |k| {
                    k.outcomes()[skip..].to_vec()
                });
            self.harvested[ci] += outs.len();
            for out in outs {
                stats.record_outcome(&out);
                let (inv, comp) = (out.invoked_at.ticks(), out.completed_at.ticks());
                let mut in_recovery = false;
                let mut in_failure = false;
                for w in &self.fault_windows {
                    if inv < w.end.unwrap_or(u64::MAX) && comp >= w.start {
                        match w.end {
                            Some(_) => in_recovery = true,
                            None => in_failure = true,
                        }
                    }
                }
                stats.attribution.record(classify(
                    out.kind == rqs_storage::OpKind::Read,
                    out.rounds as u32,
                    out.retries,
                    in_recovery,
                    in_failure,
                    out.queued_ticks > 0,
                ));
                let rec = OpRecord {
                    kind: out.kind,
                    client: ci,
                    pair: out.pair.clone(),
                    invoked_at: out.invoked_at,
                    completed_at: out.completed_at,
                };
                match &self.sidecar {
                    Some(sidecar) => sidecar.observe(out.object.0, rec),
                    None => {
                        self.checkers.entry(out.object).or_default().observe(&rec);
                    }
                }
                if self.retain_outcomes {
                    self.completed.push((ci, out));
                }
            }
        }
        match &self.sidecar {
            Some(sidecar) => sidecar.retire_settled(),
            None => {
                for c in self.checkers.values_mut() {
                    c.retire_settled();
                }
            }
        }
    }

    /// Aggregated counters of the per-object streaming checkers (empty
    /// while a sidecar owns the checking — see
    /// [`SidecarReport`](rqs_runtime::SidecarReport)).
    pub fn checker_stats(&self) -> CheckerStats {
        let mut agg = CheckerStats::default();
        for c in self.checkers.values() {
            agg.merge(&c.stats());
        }
        agg
    }

    /// All completed operations so far, as `(client, outcome)` pairs.
    pub fn completed(&self) -> &[(usize, KvOutcome)] {
        &self.completed
    }

    /// The per-object operation logs (for checking or inspection).
    pub fn per_object_records(&self) -> BTreeMap<ObjectId, Vec<OpRecord>> {
        let mut map: BTreeMap<ObjectId, Vec<OpRecord>> = BTreeMap::new();
        for (ci, out) in &self.completed {
            map.entry(out.object).or_default().push(OpRecord {
                kind: out.kind,
                client: *ci,
                pair: out.pair.clone(),
                invoked_at: out.invoked_at,
                completed_at: out.completed_at,
            });
        }
        map
    }

    /// Checks every object's history for atomicity by reading the
    /// verdicts of the streaming checkers that validated each wave as it
    /// completed — O(objects), no history rescan. Works on both
    /// substrates: wall-clock invocation/response ticks only widen the
    /// apparent concurrency windows, which never invalidates a real-time
    /// linearization.
    ///
    /// When a sidecar owns the checking, the verdict lives in its
    /// [`SidecarReport`](rqs_runtime::SidecarReport) instead.
    ///
    /// # Errors
    ///
    /// Returns the first violating object.
    pub fn check_atomicity(&self) -> Result<(), KvAtomicityViolation> {
        for (object, checker) in &self.checkers {
            if let Err(violation) = checker.verdict() {
                // Attach the flight-recorder tail as one structured JSON
                // report before surfacing the violation: the recorded
                // deliver/drop/crash history around the violating ops is
                // the first thing a post-mortem needs.
                let details = [
                    ("object", object.to_string()),
                    ("violation", violation.to_string()),
                ];
                eprintln!(
                    "{}",
                    dump_json("atomicity-violation", &details, &self.tracer.snapshot())
                );
                return Err(KvAtomicityViolation {
                    object: *object,
                    violation,
                });
            }
        }
        Ok(())
    }

    /// A canonical, human-readable operation trace: one line per
    /// completed operation in completion order per client. Two simulator
    /// runs with the same seed must produce byte-identical traces.
    pub fn op_trace(&self) -> Vec<String> {
        self.completed
            .iter()
            .map(|(ci, o)| {
                format!(
                    "c{} {} {} {} rounds={} [{},{}]",
                    ci,
                    match o.kind {
                        rqs_storage::OpKind::Write => "W",
                        rqs_storage::OpKind::Read => "R",
                    },
                    o.object,
                    o.pair,
                    o.rounds,
                    o.invoked_at,
                    o.completed_at,
                )
            })
            .collect()
    }

    /// Stops the substrate (a no-op on the simulator).
    pub fn shutdown(&mut self) {
        self.sub.shutdown();
    }
}

/// Simulator-only scripting surface.
impl KvSim {
    /// The underlying world (crash injection, tracing, inspection).
    pub fn world_mut(&mut self) -> &mut World<KvBatch> {
        &mut self.sub
    }

    /// Current simulated time in ticks.
    pub fn now_ticks(&self) -> u64 {
        self.sub.now().ticks()
    }
}

impl RtKv {
    /// Deploys on the threaded runtime with an explicit wall-clock tick
    /// length (back-compat constructor).
    pub fn with_tick(rqs: Rqs, objects: usize, clients: usize, tick: Duration) -> Self {
        Self::with_setup(rqs, objects, clients, Scenario::default(), tick)
    }

    /// Offloads streaming atomicity checking to a dedicated
    /// [`CheckerSidecar`] thread: harvested records become channel sends,
    /// keeping validation off the workload-driving thread. Call
    /// [`finish_sidecar`](Self::finish_sidecar) for the verdict.
    ///
    /// # Panics
    ///
    /// Panics if operations were already checked in-line: the sidecar
    /// must see the history from the start.
    pub fn enable_checker_sidecar(&mut self) {
        assert!(
            self.checkers.is_empty(),
            "enable the sidecar before running workloads"
        );
        self.sidecar = Some(CheckerSidecar::spawn());
    }

    /// Joins the checker sidecar (if one is enabled) and returns its
    /// verdict and aggregated counters.
    pub fn finish_sidecar(&mut self) -> Option<SidecarReport> {
        self.sidecar.take().map(CheckerSidecar::finish)
    }

    /// Shards every benign server's object state across `workers`
    /// dedicated threads (objects hash to workers, replies flow through
    /// the runtime's network handle) — the server-side half of the
    /// hot-path throughput work. Byzantine servers are skipped: they are
    /// not [`KvServer`]s. Call before running workloads; threaded
    /// runtime only, since the deterministic simulator has no real
    /// threads to shard over.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a pool is already enabled.
    pub fn enable_worker_pool(&mut self, workers: usize) {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        assert_eq!(self.workers, 0, "worker pool already enabled");
        self.workers = workers;
        for (idx, &sid) in self.servers.clone().iter().enumerate() {
            if self.byzantine.contains(&idx) {
                continue;
            }
            let net = self.sub.net_handle();
            self.sub.invoke_on::<KvServer>(sid, move |s, ctx| {
                s.enable_worker_pool(workers, ctx.me(), net)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use rqs_core::threshold::ThresholdConfig;
    use rqs_storage::OpKind;

    fn small_sim() -> KvSim {
        KvSim::new(ThresholdConfig::crash_fast(5, 1).build().unwrap(), 8, 2)
    }

    #[test]
    fn mixed_workload_completes_and_is_atomic() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 60, 11);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 60);
        assert!(stats.rounds.fast_path_ratio() > 0.5, "sync fast path");
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn batching_reduces_envelopes_per_op() {
        let cfg = WorkloadConfig::mixed(8, 2, 64, 3);
        let ops = generate(&cfg);
        let run = |batch: usize| {
            let mut sim = small_sim();
            let stats = sim.run_workload(&ops, batch);
            sim.check_atomicity().unwrap();
            stats.envelopes_per_op()
        };
        let unbatched = run(1);
        let batched = run(8);
        assert!(
            batched < unbatched,
            "batch=8 ({batched:.2}) must beat batch=1 ({unbatched:.2})"
        );
    }

    #[test]
    fn reads_see_written_values() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig {
            read_percent: 40,
            ..WorkloadConfig::mixed(8, 2, 80, 5)
        };
        sim.run_workload(&generate(&cfg), 4);
        sim.check_atomicity().unwrap();
        // Every non-initial read pair matches some write of that object.
        let per_object = sim.per_object_records();
        for records in per_object.values() {
            for r in records.iter().filter(|r| r.kind == OpKind::Read) {
                if !r.pair.is_initial() {
                    assert!(records
                        .iter()
                        .any(|w| w.kind == OpKind::Write && w.pair == r.pair));
                }
            }
        }
    }

    #[test]
    fn byzantine_server_tolerated() {
        let mut sim = KvSim::new(ThresholdConfig::byzantine_fast(1).build().unwrap(), 16, 4);
        sim.make_byzantine(0, ByzantineMode::Forge);
        let cfg = WorkloadConfig::mixed(16, 4, 96, 9);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 96);
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn mute_byzantine_server_tolerated() {
        let mut sim = KvSim::new(ThresholdConfig::byzantine_fast(1).build().unwrap(), 8, 2);
        sim.make_byzantine(3, ByzantineMode::Mute);
        let cfg = WorkloadConfig::mixed(8, 2, 40, 13);
        let stats = sim.run_workload(&generate(&cfg), 2);
        assert_eq!(stats.ops, 40);
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn scenario_byzantine_swap_in() {
        let scenario = Scenario::named("byz0").with_byzantine(0);
        let mut sim = KvSim::with_scenario(
            ThresholdConfig::byzantine_fast(1).build().unwrap(),
            8,
            2,
            scenario,
        );
        let cfg = WorkloadConfig::mixed(8, 2, 40, 21);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 40);
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn durable_sim_survives_amnesia_crash_plan() {
        let scenario = Scenario::named("amnesia").crash_restart_amnesia(1, 5, 15);
        let mut sim = KvSim::durable_with_scenario(
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
            8,
            2,
            scenario,
        );
        let cfg = WorkloadConfig::mixed(8, 2, 60, 11);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 60);
        sim.check_atomicity().unwrap();
        let store = sim.store_stats();
        assert_eq!(store.crashes, 1, "the amnesia restart hit the store");
        assert!(store.appends > 0, "servers journaled write-ahead deltas");
    }

    #[test]
    fn lossy_links_are_survived_by_client_retries() {
        // Every 2nd message touching any server is dropped, in both
        // directions, for the whole run. Without retries a round whose
        // quorum acks were thinned below a quorum would stall forever
        // (the protocol never resends); the client watchdogs nudge the
        // stuck rounds through. Ops must complete exactly once each.
        let scenario = Scenario::named("lossy").lossy_towards(vec![0, 1, 2, 3, 4], 2);
        let mut sim = KvSim::with_scenario(
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
            8,
            2,
            scenario,
        );
        sim.set_retry_policy(crate::client::RetryPolicy {
            max_retries: 64,
            base_backoff: 4,
            max_backoff: 32,
            deadline: 1 << 20,
        });
        let cfg = WorkloadConfig::mixed(8, 2, 40, 19);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 40, "retried ops complete exactly once");
        sim.check_atomicity().unwrap();
        assert!(
            stats.retries.retries_issued > 0,
            "the lossy run must actually have exercised retries"
        );
        assert!(stats.retries.backoff_ticks >= stats.retries.retries_issued);
        assert_eq!(sim.retry_stats(), stats.retries, "run delta == lifetime");
    }

    #[test]
    fn amnesia_crash_mid_run_is_survived_by_retries_and_wal() {
        // A server amnesia-crashes while traffic is in flight: acks it
        // owed die with it. Retries re-drive the affected rounds; the
        // WAL restores its history so atomicity holds across the restart.
        let scenario = Scenario::named("amnesia-retry").crash_restart_amnesia(2, 3, 9);
        let mut sim = KvSim::durable_with_scenario(
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
            8,
            2,
            scenario,
        );
        let cfg = WorkloadConfig::mixed(8, 2, 60, 29);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 60);
        sim.check_atomicity().unwrap();
        assert_eq!(sim.store_stats().crashes, 1);
    }

    #[test]
    fn trace_is_nonempty_and_tagged() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 10, 1);
        sim.run_workload(&generate(&cfg), 2);
        let trace = sim.op_trace();
        assert_eq!(trace.len(), 10);
        assert!(trace.iter().all(|l| l.starts_with('c')));
    }

    #[test]
    fn streaming_checker_memory_bounded_by_concurrency_not_history() {
        // Same deployment shape, 4x the ops: the checker frontier (peak
        // resident entries) must not scale with history length, and with
        // retention off the driver keeps no per-op state at all.
        let run = |ops: usize| {
            let mut sim = small_sim();
            sim.retain_outcomes(false);
            let cfg = WorkloadConfig::mixed(8, 2, ops, 7);
            let stats = sim.run_workload(&generate(&cfg), 4);
            sim.check_atomicity().unwrap();
            assert!(sim.completed().is_empty(), "outcomes not retained");
            stats
        };
        let small = run(80);
        let large = run(320);
        assert_eq!(small.checker.ops_checked, 80);
        assert_eq!(large.checker.ops_checked, 320);
        assert!(
            large.checker.max_frontier <= small.checker.max_frontier + 4,
            "frontier grew with history: {} vs {}",
            large.checker.max_frontier,
            small.checker.max_frontier
        );
        assert!(large.checker.retired_ops > 0, "retirement engaged");
        assert!(large.checker.retired_watermark > 0);
    }

    #[test]
    fn checker_stats_surface_through_run_stats() {
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 60, 11);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.checker.ops_checked, 60);
        assert_eq!(stats.latencies.len(), 60);
        assert!(stats.latency_percentile(99.0) >= stats.latency_percentile(50.0));
        assert_eq!(sim.checker_stats().ops_checked, 60);
    }

    #[test]
    fn sidecar_checks_threaded_run_off_thread() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 8, 2, Duration::from_millis(1));
        kv.enable_checker_sidecar();
        kv.retain_outcomes(false);
        let cfg = WorkloadConfig::mixed(8, 2, 24, 31);
        let stats = kv.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 24);
        assert_eq!(stats.checker.ops_checked, 0, "checking is off-thread");
        let report = kv.finish_sidecar().expect("sidecar enabled");
        report.verdict.unwrap();
        assert_eq!(report.stats.ops_checked, 24);
        kv.shutdown();
    }

    #[test]
    fn threaded_kv_roundtrip() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 8, 2, Duration::from_millis(1));
        let cfg = WorkloadConfig::mixed(8, 2, 24, 17);
        let stats = kv.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 24);
        assert!(stats.throughput() > 0.0);
        assert!(stats.envelopes > 0, "runtime now counts envelopes too");
        kv.check_atomicity().unwrap();
        kv.shutdown();
    }

    #[test]
    fn trace_events_are_deterministic_per_seed() {
        use rqs_obs::Tracer;
        let run = || {
            let rec = Arc::new(rqs_obs::FlightRecorder::new(1 << 14));
            let mut sim = KvSim::with_setup_traced(
                ThresholdConfig::crash_fast(5, 1).build().unwrap(),
                8,
                2,
                Scenario::default(),
                rqs_sim::DEFAULT_TICK,
                Vec::new(),
                rec.clone(),
            );
            let cfg = WorkloadConfig::mixed(8, 2, 40, 11);
            sim.run_workload(&generate(&cfg), 4);
            rec.snapshot()
        };
        let a = run();
        assert!(!a.is_empty(), "a traced sim run must record events");
        assert_eq!(a, run(), "same seed, same event sequence");
    }

    #[test]
    fn traced_run_records_every_layer() {
        use rqs_obs::TraceKind;
        let rec = Arc::new(rqs_obs::FlightRecorder::new(1 << 14));
        let stores = (0..5).map(|_| rqs_store::StoreHandle::mem()).collect();
        let mut sim = KvSim::with_setup_traced(
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
            8,
            2,
            Scenario::named("amnesia").crash_restart_amnesia(1, 5, 15),
            rqs_sim::DEFAULT_TICK,
            stores,
            rec.clone(),
        );
        let cfg = WorkloadConfig::mixed(8, 2, 60, 11);
        sim.run_workload(&generate(&cfg), 4);
        sim.check_atomicity().unwrap();
        let events = sim.obs_events();
        let has = |k: TraceKind| events.iter().any(|e| e.kind == k);
        assert!(has(TraceKind::OpInvoked), "client lanes traced");
        assert!(has(TraceKind::OpCompleted));
        assert!(has(TraceKind::RoundStarted));
        assert!(has(TraceKind::QuorumAssembled));
        assert!(has(TraceKind::Deliver), "substrate traced");
        assert!(has(TraceKind::Crash), "crash plan traced");
        assert!(has(TraceKind::Recover));
        assert!(has(TraceKind::WalAppended), "durable store traced");
    }

    #[test]
    fn clean_run_attributes_fast_path() {
        use rqs_obs::SlowPathCause;
        // Write-only workload on a fault-free synchronous sim: every op
        // is one round, no retries — the attribution table must say so.
        let mut sim = small_sim();
        let cfg = WorkloadConfig {
            read_percent: 0,
            ..WorkloadConfig::mixed(8, 2, 60, 11)
        };
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.attribution.total() as usize, stats.ops);
        assert!(
            stats.attribution.fast_ratio() >= 0.99,
            "clean run must be ≥99% fast path, got {:?}",
            stats.attribution.rows()
        );
        // A mixed run still attributes every op to exactly one cause.
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 60, 11);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.attribution.total() as usize, stats.ops);
        assert_eq!(stats.attribution.count(SlowPathCause::Recovery), 0);
        assert_eq!(stats.attribution.count(SlowPathCause::ServerFailure), 0);
    }

    #[test]
    fn degraded_run_attributes_retry_and_recovery() {
        use rqs_obs::SlowPathCause;
        // Flaky links towards every server plus a crash-restart window:
        // nudged ops outside the window read as retry, slow ops
        // overlapping it as recovery.
        let scenario = Scenario::named("flaky-crash")
            .lossy_towards(vec![0, 1, 2, 3, 4], 2)
            .crash_restart(0, 10, 60);
        let mut sim = KvSim::with_scenario(
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
            8,
            2,
            scenario,
        );
        sim.set_retry_policy(crate::client::RetryPolicy {
            max_retries: 64,
            base_backoff: 4,
            max_backoff: 32,
            deadline: 1 << 20,
        });
        let cfg = WorkloadConfig::mixed(8, 2, 40, 19);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 40);
        sim.check_atomicity().unwrap();
        assert_eq!(stats.attribution.total() as usize, stats.ops);
        assert!(
            stats.attribution.count(SlowPathCause::Retry) > 0,
            "lossy links must surface as retry attributions: {:?}",
            stats.attribution.rows()
        );
        assert!(
            stats.attribution.count(SlowPathCause::Recovery) > 0,
            "the crash window must surface as recovery attributions: {:?}",
            stats.attribution.rows()
        );
    }

    #[test]
    fn manual_crash_windows_feed_attribution() {
        use rqs_obs::SlowPathCause;
        // Crash a server mid-run by hand; an op window overlapping the
        // open window reads as server-failure until the restart closes
        // it.
        let mut sim = small_sim();
        let cfg = WorkloadConfig::mixed(8, 2, 20, 3);
        sim.run_workload(&generate(&cfg), 4);
        sim.crash_server(0, CrashMode::Retain);
        let cfg = WorkloadConfig::mixed(8, 2, 20, 5);
        let stats = sim.run_workload(&generate(&cfg), 4);
        sim.restart_server(0);
        // 4-of-5 quorums still close in one round with server 0 down, so
        // not every op is slow — but any slow op must be attributed to
        // the failure, never to scheduling.
        assert_eq!(stats.attribution.count(SlowPathCause::Scheduling), 0);
        assert_eq!(stats.attribution.count(SlowPathCause::Contention), 0);
        sim.check_atomicity().unwrap();
    }

    #[test]
    fn pipelined_workload_completes_atomically_and_deterministically() {
        let run = |depth: usize| {
            let mut sim = small_sim();
            sim.set_pipeline(depth);
            assert_eq!(sim.pipeline(), depth);
            let cfg = WorkloadConfig::mixed(8, 2, 80, 11);
            let stats = sim.run_workload(&generate(&cfg), 4);
            assert_eq!(stats.ops, 80);
            sim.check_atomicity().unwrap();
            (stats.ops, sim.op_trace())
        };
        for depth in [2, 4, 8] {
            let (ops_a, trace_a) = run(depth);
            let (_, trace_b) = run(depth);
            assert_eq!(ops_a, 80);
            assert_eq!(
                trace_a.join("\n"),
                trace_b.join("\n"),
                "same seed, same depth ({depth}) ⇒ byte-identical traces"
            );
        }
        // Every depth completes the same op multiset as depth 1.
        let (_, depth1) = run(1);
        let (_, depth4) = run(4);
        assert_eq!(depth1.len(), depth4.len());
    }

    #[test]
    fn pipelined_run_records_queue_waits_as_scheduling() {
        use rqs_obs::SlowPathCause;
        // Deep pipeline over few objects: most ops wait behind a lane
        // predecessor, and the attribution table must say scheduling,
        // not pretend they were fast.
        let mut sim = KvSim::new(ThresholdConfig::crash_fast(5, 1).build().unwrap(), 2, 2);
        sim.set_pipeline(8);
        let cfg = WorkloadConfig::mixed(2, 2, 80, 11);
        let stats = sim.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 80);
        sim.check_atomicity().unwrap();
        assert!(
            stats.attribution.count(SlowPathCause::Scheduling) > 0,
            "queued ops must be attributed: {:?}",
            stats.attribution.rows()
        );
        let queued: u64 = sim.completed().iter().map(|(_, o)| o.queued_ticks).sum();
        assert!(queued > 0, "deep pipeline must actually queue");
    }

    #[test]
    fn threaded_kv_with_worker_pool_and_pipeline() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 8, 2, Duration::from_millis(1));
        kv.enable_worker_pool(2);
        assert_eq!(kv.workers(), 2);
        kv.set_pipeline(4);
        let cfg = WorkloadConfig::mixed(8, 2, 48, 37);
        let stats = kv.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 48);
        kv.check_atomicity().unwrap();
        kv.shutdown();
    }

    #[test]
    fn threaded_pooled_server_survives_amnesia_crash() {
        // Durable pooled servers: checkpoint gathers the shards into one
        // snapshot, an amnesia restart drains the shards, reloads the
        // shared store, and re-installs each worker's slice.
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let stores: Vec<StoreHandle> = (0..5).map(|_| StoreHandle::mem()).collect();
        let mut kv = RtKv::with_setup_stores(
            rqs,
            8,
            2,
            Scenario::default(),
            Duration::from_millis(1),
            stores,
        );
        kv.enable_worker_pool(2);
        let cfg = WorkloadConfig::mixed(8, 2, 24, 41);
        kv.run_workload(&generate(&cfg), 4);
        kv.checkpoint_server(1); // pooled save_state: barrier + gather
        kv.crash_server(1, CrashMode::Amnesia);
        kv.restart_server(1); // pooled restore_state: barrier + install
        let cfg = WorkloadConfig::mixed(8, 2, 24, 43);
        let stats = kv.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 24);
        kv.check_atomicity().unwrap();
        assert_eq!(kv.server_stores()[1].stats().crashes, 1);
        kv.shutdown();
    }

    #[test]
    fn worker_pool_skips_byzantine_servers() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 4, 2, Duration::from_millis(1));
        kv.make_byzantine(0, ByzantineMode::Forge);
        kv.enable_worker_pool(2); // must not downcast-invoke the forger
        let cfg = WorkloadConfig::mixed(4, 2, 16, 47);
        let stats = kv.run_workload(&generate(&cfg), 2);
        assert_eq!(stats.ops, 16);
        kv.check_atomicity().unwrap();
        kv.shutdown();
    }

    #[test]
    fn threaded_kv_byzantine_universe() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 4, 2, Duration::from_millis(1));
        let cfg = WorkloadConfig::mixed(4, 2, 12, 23);
        let stats = kv.run_workload(&generate(&cfg), 2);
        assert_eq!(stats.ops, 12);
        kv.shutdown();
    }
}
