//! The multi-object wire format: batched, object-tagged storage messages.
//!
//! Every envelope on the network is a [`KvBatch`] — all the per-object
//! [`StorageMsg`]s one node produced for one destination in one step. With
//! `B` operations in flight at a client, one tick's worth of protocol
//! traffic to a server coalesces into a single batch instead of `B`
//! separate envelopes, which is where the messages-per-operation savings
//! of the KV layer come from.

use crate::object::ObjectId;
use core::fmt;
use rqs_sim::{Context, NodeId};
use rqs_storage::StorageMsg;
use std::collections::BTreeMap;

/// Which client-side automaton a message belongs to.
///
/// A single KV client multiplexes a [`Writer`](rqs_storage::Writer) (for
/// objects it owns) and a [`Reader`](rqs_storage::Reader) per object over
/// one node id. In the single-object system those are distinct processes
/// with distinct addresses; the lane tag preserves that addressing so a
/// server's `wr_ack` reaches the automaton whose `wr` it answers (a read's
/// write-back and the owner's write may otherwise be indistinguishable).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lane {
    /// The owning client's writer automaton.
    Writer,
    /// A reader automaton.
    Reader,
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lane::Writer => write!(f, "w"),
            Lane::Reader => write!(f, "r"),
        }
    }
}

/// One object-tagged protocol message inside a batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KvItem {
    /// The object (register) this message is about.
    pub object: ObjectId,
    /// The client-side lane the exchange belongs to (echoed by servers).
    pub lane: Lane,
    /// The underlying single-object protocol message.
    pub msg: StorageMsg,
}

/// A batch of object-tagged messages: the network message type of the KV
/// service. One batch per destination per sender step.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KvBatch(pub Vec<KvItem>);

impl KvBatch {
    /// Number of protocol messages inside the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for KvBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch[{}]{{", self.0.len())?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}:{}", item.object, item.lane, item.msg)?;
        }
        write!(f, "}}")
    }
}

/// Per-destination envelope re-batching, shared by [`KvClient`] and
/// [`KvServer`]: inner protocol messages are tagged and buffered per
/// destination, then everything bound for one node leaves as a single
/// [`KvBatch`] — the coalescing that makes `B` concurrent operations cost
/// far fewer than `B×` envelopes.
///
/// The accumulator is built to live across steps: a flush empties the
/// per-destination buffers but keeps the map nodes, so a long-lived
/// accumulator cycling over a fixed destination set (a client talking to
/// its universe, a server answering its clients) stops allocating map
/// nodes after the first wave.
///
/// [`KvClient`]: crate::KvClient
/// [`KvServer`]: crate::KvServer
#[derive(Clone, Debug, Default)]
pub struct BatchAccumulator {
    pending: BTreeMap<NodeId, Vec<KvItem>>,
}

impl BatchAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        BatchAccumulator::default()
    }

    /// Buffers one object-tagged message bound for `to`.
    pub fn push(&mut self, to: NodeId, object: ObjectId, lane: Lane, msg: StorageMsg) {
        self.pending
            .entry(to)
            .or_default()
            .push(KvItem { object, lane, msg });
    }

    /// Buffers every message of an inner automaton's outbox under one
    /// `(object, lane)` tag.
    pub fn absorb(
        &mut self,
        object: ObjectId,
        lane: Lane,
        outbox: impl IntoIterator<Item = (NodeId, StorageMsg)>,
    ) {
        for (to, msg) in outbox {
            self.push(to, object, lane, msg);
        }
    }

    /// `true` iff nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.values().all(Vec::is_empty)
    }

    /// Sends every buffered item as one batch per destination, emptying
    /// the buffers but keeping the per-destination map nodes for reuse.
    pub fn flush(&mut self, ctx: &mut Context<KvBatch>) {
        for (to, batch) in self.drain() {
            ctx.send(to, batch);
        }
    }

    /// Drains every buffered item as one `(destination, batch)` pair —
    /// the context-free twin of [`flush`](Self::flush) for senders
    /// outside an automaton step, such as a server worker thread
    /// replying through a runtime
    /// [`NetHandle`](rqs_runtime::NetHandle). Map nodes are retained.
    pub fn drain(&mut self) -> Vec<(NodeId, KvBatch)> {
        self.pending
            .iter_mut()
            .filter(|(_, items)| !items.is_empty())
            .map(|(to, items)| (*to, KvBatch(std::mem::take(items))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_sim::Time;

    #[test]
    fn accumulator_coalesces_per_destination() {
        let mut acc = BatchAccumulator::new();
        assert!(acc.is_empty());
        acc.push(
            NodeId(1),
            ObjectId(0),
            Lane::Writer,
            StorageMsg::WrAck { ts: 1, rnd: 1 },
        );
        acc.push(
            NodeId(2),
            ObjectId(0),
            Lane::Writer,
            StorageMsg::WrAck { ts: 1, rnd: 1 },
        );
        acc.absorb(
            ObjectId(3),
            Lane::Reader,
            vec![(NodeId(1), StorageMsg::WrAck { ts: 2, rnd: 1 })],
        );
        assert!(!acc.is_empty());
        let mut ctx: Context<KvBatch> = Context::new(NodeId(0), Time::ZERO, 0);
        acc.flush(&mut ctx);
        assert!(acc.is_empty());
        // Two destinations → two envelopes; node 1 carries both its items.
        assert_eq!(ctx.sent().len(), 2);
        let (to, batch) = &ctx.sent()[0];
        assert_eq!(*to, NodeId(1));
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.0[1].object, ObjectId(3));
        assert_eq!(batch.0[1].lane, Lane::Reader);
    }

    #[test]
    fn drain_retains_destination_nodes_for_reuse() {
        let mut acc = BatchAccumulator::new();
        acc.push(
            NodeId(4),
            ObjectId(1),
            Lane::Writer,
            StorageMsg::WrAck { ts: 1, rnd: 1 },
        );
        let first = acc.drain();
        assert_eq!(first.len(), 1);
        assert!(acc.is_empty(), "drained accumulator reads as empty");
        // Refill the same destination: the retained node is reused and a
        // second drain sends only the new item.
        acc.push(
            NodeId(4),
            ObjectId(2),
            Lane::Reader,
            StorageMsg::WrAck { ts: 2, rnd: 1 },
        );
        let second = acc.drain();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].1.len(), 1);
        assert_eq!(second[0].1 .0[0].object, ObjectId(2));
        assert!(acc.drain().is_empty(), "empty nodes are skipped");
    }

    #[test]
    fn flush_of_empty_accumulator_sends_nothing() {
        let mut acc = BatchAccumulator::new();
        let mut ctx: Context<KvBatch> = Context::new(NodeId(0), Time::ZERO, 0);
        acc.flush(&mut ctx);
        assert!(ctx.sent().is_empty());
    }

    #[test]
    fn batch_display_is_compact() {
        let b = KvBatch(vec![KvItem {
            object: ObjectId(2),
            lane: Lane::Writer,
            msg: StorageMsg::WrAck { ts: 1, rnd: 1 },
        }]);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert_eq!(b.to_string(), "batch[1]{o2/w:wr_ack⟨1,1⟩}");
    }

    #[test]
    fn empty_batch() {
        let b = KvBatch::default();
        assert!(b.is_empty());
        assert_eq!(b.to_string(), "batch[0]{}");
    }
}
