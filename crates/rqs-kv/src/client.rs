//! The multi-object client automaton.
//!
//! A [`KvClient`] owns a disjoint set of objects (it is the single writer
//! for each of them) and can read any object. Internally it multiplexes
//! one unmodified [`Writer`] per owned object and one unmodified
//! [`Reader`] per object it has read, so the per-object protocol is
//! *exactly* the paper's algorithm — the KV layer adds only routing,
//! timer bookkeeping and batching:
//!
//! - every inner send is tagged with its object and lane and buffered;
//!   at the end of the step the buffer is flushed as one [`KvBatch`] per
//!   destination (the batching that makes `B` concurrent operations cost
//!   far fewer than `B×` envelopes);
//! - inner timers are re-armed on the outer context and a token map
//!   routes expirations back to the automaton that armed them;
//! - completed inner operations are harvested into a flat outcome log
//!   with object tags, rounds and invocation/response times;
//! - every in-flight operation carries a retry watchdog: if it has not
//!   completed when the watchdog fires, the client *nudges* the inner
//!   automaton — re-broadcasting its current round verbatim via
//!   [`Writer::resend_round`]/[`Reader::resend_round`] — and re-arms
//!   with exponential backoff and deterministic jitter, up to a bounded
//!   retry count and per-op deadline ([`RetryPolicy`]). Nudges never
//!   re-invoke, so a retried operation keeps its timestamp (writes) or
//!   read number (reads) and duplicate replies are suppressed by the
//!   protocol's own stale-ack filters: retried ops stay atomic and are
//!   never double-counted;
//! - with pipelining enabled ([`KvClient::set_pipeline`]), up to N
//!   operations may be outstanding per `(object, lane)` stream: each
//!   admitted op is tagged with a client-wide monotone sequence, ops
//!   beyond the active one wait in a FIFO backlog, and the next op
//!   launches the moment the lane goes idle — in the *same* step, so its
//!   round-1 messages join that step's batch flush. The backlog keeps
//!   program order per lane, and the active op completes before its
//!   successor is invoked, so per-object program order equals real-time
//!   order and the atomicity-checker contract is untouched. Queue wait
//!   is recorded per op ([`KvOutcome::queued_ticks`], traced as
//!   `queue_wait`, attributed as `scheduling`); depth 1 is byte-identical
//!   to the unpipelined client.

use crate::messages::{BatchAccumulator, KvBatch, KvItem, Lane};
use crate::object::ObjectId;
use rqs_core::Rqs;
use rqs_obs::{Obs, TraceKind, LANE_READER, LANE_WRITER};
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken};
use rqs_storage::reader::Reader;
use rqs_storage::writer::{Writer, CLIENT_TIMEOUT};
use rqs_storage::{OpKind, StorageMsg, TsVal, Value};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// One operation a client can be asked to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Write `value` to `object` (the client must own the object).
    Write {
        /// Target object.
        object: ObjectId,
        /// Value to write (must not be `⊥`).
        value: Value,
    },
    /// Read `object` (any client may read any object).
    Read {
        /// Target object.
        object: ObjectId,
    },
}

impl KvOp {
    /// The object the operation touches.
    pub fn object(&self) -> ObjectId {
        match self {
            KvOp::Write { object, .. } | KvOp::Read { object } => *object,
        }
    }

    /// Write or read.
    pub fn kind(&self) -> OpKind {
        match self {
            KvOp::Write { .. } => OpKind::Write,
            KvOp::Read { .. } => OpKind::Read,
        }
    }
}

/// Record of one completed KV operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvOutcome {
    /// The object operated on.
    pub object: ObjectId,
    /// Write or read.
    pub kind: OpKind,
    /// The written pair (writes) or returned pair (reads).
    pub pair: TsVal,
    /// Protocol rounds the operation took.
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
    /// Retry nudges the client's watchdog issued while this operation
    /// was in flight (feeds slow-path attribution).
    pub retries: u32,
    /// Client-wide monotone admission sequence: per `(object, lane)`
    /// stream, outcomes complete in strictly increasing `seq` order
    /// (pipelined ops keep program order).
    pub seq: u64,
    /// Ticks this operation waited in the client-side pipeline backlog
    /// between admission and launch (`0` when it launched immediately,
    /// as every op does at pipeline depth 1).
    pub queued_ticks: u64,
}

#[derive(Debug)]
struct TimerRoute {
    object: ObjectId,
    lane: Lane,
    inner: TimerToken,
}

/// Retry behaviour of a [`KvClient`].
///
/// Delays are in substrate ticks. Retry `k` (zero-based) fires
/// `min(base_backoff · 2ᵏ, max_backoff)` ticks after the previous
/// (re)send, plus a deterministic jitter in `[0, base_backoff/2]` hashed
/// from the client id, object, lane and attempt — so co-started
/// operations de-synchronise without any nondeterminism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum nudges per operation (`0` disables retries entirely).
    pub max_retries: u32,
    /// Delay before the first nudge and base of the exponential curve.
    pub base_backoff: u64,
    /// Cap on the exponential delay (jitter may exceed it slightly).
    pub max_backoff: u64,
    /// Per-op deadline in ticks since invocation: once exceeded, no
    /// further nudges are issued (the operation itself stays pending —
    /// abandoning it would break well-formedness — but the client stops
    /// spending sends on it and counts it as exhausted).
    pub deadline: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            // An uncontended op finishes within one CLIENT_TIMEOUT; only
            // genuinely stuck ops see a nudge.
            base_backoff: 2 * CLIENT_TIMEOUT,
            max_backoff: 32 * CLIENT_TIMEOUT,
            deadline: 4096,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-hardening behaviour).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The delay before zero-based retry `attempt`, including jitter.
    fn backoff(&self, seed: u64, attempt: u32) -> u64 {
        let exp = self
            .base_backoff
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff);
        let h = rqs_sim::fnv1a_fold(
            rqs_sim::fnv1a_fold(rqs_sim::fnv1a(b"kv-retry"), seed),
            attempt as u64,
        );
        exp + h % (self.base_backoff / 2 + 1)
    }
}

/// Retry counters of one client (or merged over a deployment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Nudges (round re-broadcasts) issued.
    pub retries_issued: u64,
    /// Total ticks waited between a (re)send and the nudge that followed.
    pub backoff_ticks: u64,
    /// Operations whose retry budget (count or deadline) ran out while
    /// still in flight.
    pub exhausted: u64,
}

impl RetryStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RetryStats) {
        self.retries_issued += other.retries_issued;
        self.backoff_ticks += other.backoff_ticks;
        self.exhausted += other.exhausted;
    }
}

/// Watchdog state of one in-flight `(object, lane)` operation.
#[derive(Debug)]
struct LaneRetry {
    /// Zero-based index of the *next* retry.
    attempt: u32,
    invoked_at: Time,
    /// The armed outer timer token.
    token: u64,
    /// The delay that timer was armed with.
    delay: u64,
}

/// A backlogged op awaiting launch: `(seq, admitted_at, op)`.
type Backlogged = (u64, Time, KvOp);

fn lane_bit(lane: Lane) -> u64 {
    match lane {
        Lane::Writer => 0,
        Lane::Reader => 1,
    }
}

fn lane_tag(lane: Lane) -> u8 {
    match lane {
        Lane::Writer => LANE_WRITER,
        Lane::Reader => LANE_READER,
    }
}

/// The multi-object KV client automaton.
#[derive(Debug)]
pub struct KvClient {
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    owned: BTreeSet<ObjectId>,
    writers: BTreeMap<ObjectId, Writer>,
    readers: BTreeMap<ObjectId, Reader>,
    /// Per-destination outgoing buffer, flushed once per step.
    pending: BatchAccumulator,
    /// Monotone counter seeding inner contexts: inner tokens are unique
    /// across all inner automata of this client.
    inner_counter: u64,
    /// Outer timer token → the inner automaton and token it stands for.
    timer_routes: BTreeMap<u64, TimerRoute>,
    /// Inner token → the outer token armed for it (for cancellation).
    timer_back: BTreeMap<u64, u64>,
    /// Harvested writer outcomes per object (consumption cursor).
    taken_w: BTreeMap<ObjectId, usize>,
    /// Harvested reader outcomes per object.
    taken_r: BTreeMap<ObjectId, usize>,
    outcomes: Vec<KvOutcome>,
    in_flight: usize,
    retry: RetryPolicy,
    /// Outer retry-watchdog token → the lane it guards.
    retry_timers: BTreeMap<u64, (ObjectId, Lane)>,
    /// Watchdog state per in-flight lane.
    lane_retry: BTreeMap<(ObjectId, Lane), LaneRetry>,
    retry_stats: RetryStats,
    /// Structured-trace handle; per-object copies (tagged with the object
    /// id) are installed on inner automata as they are created.
    obs: Obs,
    /// Nudges issued per in-flight lane, consumed into
    /// [`KvOutcome::retries`] at harvest.
    lane_nudges: BTreeMap<(ObjectId, Lane), u32>,
    /// Max outstanding (active + backlogged) ops per `(object, lane)`.
    pipeline: usize,
    /// Admitted-but-not-launched ops per lane, FIFO.
    backlog: BTreeMap<(ObjectId, Lane), VecDeque<Backlogged>>,
    /// `(seq, queued_ticks)` of the op currently active on each lane,
    /// consumed into the outcome at harvest.
    lane_meta: BTreeMap<(ObjectId, Lane), (u64, u64)>,
    /// Highest `seq` harvested per lane (debug check: program order).
    lane_done: BTreeMap<(ObjectId, Lane), u64>,
    /// Next admission sequence number.
    next_seq: u64,
}

impl KvClient {
    /// A client over `rqs` whose universe member `i` is node `servers[i]`,
    /// owning (solely allowed to write) the objects in `owned`.
    pub fn new(
        rqs: Arc<Rqs>,
        servers: Vec<NodeId>,
        owned: impl IntoIterator<Item = ObjectId>,
    ) -> Self {
        KvClient {
            rqs,
            servers,
            owned: owned.into_iter().collect(),
            writers: BTreeMap::new(),
            readers: BTreeMap::new(),
            pending: BatchAccumulator::new(),
            inner_counter: 0,
            timer_routes: BTreeMap::new(),
            timer_back: BTreeMap::new(),
            taken_w: BTreeMap::new(),
            taken_r: BTreeMap::new(),
            outcomes: Vec::new(),
            in_flight: 0,
            retry: RetryPolicy::default(),
            retry_timers: BTreeMap::new(),
            lane_retry: BTreeMap::new(),
            retry_stats: RetryStats::default(),
            obs: Obs::nop(),
            lane_nudges: BTreeMap::new(),
            pipeline: 1,
            backlog: BTreeMap::new(),
            lane_meta: BTreeMap::new(),
            lane_done: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Installs a structured-trace handle. Inner automata created from
    /// now on emit under their object id as the `op` tag; automata that
    /// already exist are re-tagged too.
    pub fn set_obs(&mut self, obs: Obs) {
        for (obj, w) in &mut self.writers {
            w.set_obs(obs.with_tag(obj.0));
        }
        for (obj, r) in &mut self.readers {
            r.set_obs(obs.with_tag(obj.0));
        }
        self.obs = obs;
    }

    /// Like [`KvClient::new`] with an explicit [`RetryPolicy`].
    pub fn with_retry(
        rqs: Arc<Rqs>,
        servers: Vec<NodeId>,
        owned: impl IntoIterator<Item = ObjectId>,
        retry: RetryPolicy,
    ) -> Self {
        let mut c = KvClient::new(rqs, servers, owned);
        c.retry = retry;
        c
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the retry policy (affects operations invoked afterwards;
    /// already-armed watchdogs keep their delays).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Objects this client owns.
    pub fn owned(&self) -> &BTreeSet<ObjectId> {
        &self.owned
    }

    /// Sets the pipeline depth: up to `depth` outstanding ops per
    /// `(object, lane)` stream. Depth 1 (the default) is the classic
    /// one-op-per-lane client.
    ///
    /// A depth above 1 also switches the per-object writer/reader
    /// automata to *eager round completion* (settle a timed round the
    /// moment every server has acked it — information-equivalent to
    /// waiting out the `2Δ` timer, see
    /// [`Writer::set_eager_completion`]): a pipelined lane must turn
    /// ops around at network speed, not timer speed, or its own backlog
    /// queues the replies past the timeout. Depth 1 keeps the classic
    /// timer-paced schedule, byte-identical to the unpipelined client.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn set_pipeline(&mut self, depth: usize) {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline = depth;
        let eager = depth > 1;
        let timeout = CLIENT_TIMEOUT.saturating_mul(depth as u64);
        for w in self.writers.values_mut() {
            w.set_eager_completion(eager);
            w.set_round_timeout(timeout);
        }
        for r in self.readers.values_mut() {
            r.set_eager_completion(eager);
            r.set_round_timeout(timeout);
        }
    }

    /// The pipeline depth in force.
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    /// Operations admitted (active or backlogged) but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Operations sitting in lane backlogs, not yet launched.
    pub fn backlogged(&self) -> usize {
        self.backlog.values().map(VecDeque::len).sum()
    }

    /// Completed operations, in completion order.
    pub fn outcomes(&self) -> &[KvOutcome] {
        &self.outcomes
    }

    /// Debug rendering of every non-idle `(object, lane)` inner
    /// automaton — the first thing to look at when a wave stalls: the
    /// dump shows the stuck round and which servers' acks are missing.
    pub fn stuck_lanes(&self) -> Vec<String> {
        let mut lanes = Vec::new();
        for (obj, w) in &self.writers {
            if !w.is_idle() {
                lanes.push(format!("{obj} writer: {w:?}"));
            }
        }
        for (obj, r) in &self.readers {
            if !r.is_idle() {
                lanes.push(format!("{obj} reader: {r:?}"));
            }
        }
        for ((obj, lane), q) in &self.backlog {
            if !q.is_empty() {
                lanes.push(format!("{obj} {lane:?} backlog: {} queued", q.len()));
            }
        }
        lanes
    }

    /// Starts a batch of operations in one step: all their round-1
    /// messages leave in one [`KvBatch`] per server. With pipelining
    /// ([`KvClient::set_pipeline`]) an op whose lane is busy is admitted
    /// into that lane's FIFO backlog instead and launches as soon as its
    /// predecessor completes.
    ///
    /// # Panics
    ///
    /// Panics if an operation would exceed the pipeline depth of its
    /// `(object, lane)` stream (well-formed clients; at depth 1 this is
    /// the classic one-op-per-lane rule), or if a write targets an
    /// object this client does not own (SWMR violation).
    pub fn start_ops(&mut self, ops: Vec<KvOp>, ctx: &mut Context<KvBatch>) {
        for op in ops {
            if let KvOp::Write { object, .. } = &op {
                assert!(
                    self.owned.contains(object),
                    "client is not the owner of {object}: SWMR violation"
                );
            }
            let object = op.object();
            let lane = match op.kind() {
                OpKind::Write => Lane::Writer,
                OpKind::Read => Lane::Reader,
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.in_flight += 1;
            let key = (object, lane);
            let busy = !self.lane_idle(object, lane)
                || self.backlog.get(&key).is_some_and(|q| !q.is_empty());
            if busy {
                let q = self.backlog.entry(key).or_default();
                assert!(
                    q.len() + 1 < self.pipeline,
                    "pipeline depth {} exceeded on {object} {lane:?}",
                    self.pipeline
                );
                q.push_back((seq, ctx.now(), op));
            } else {
                self.launch(seq, 0, op, ctx);
            }
        }
        self.flush(ctx);
    }

    /// Invokes one admitted op on its inner automaton. `queued_ticks` is
    /// the time it spent in the lane backlog (0 for ops that launch in
    /// their admission step).
    fn launch(&mut self, seq: u64, queued_ticks: u64, op: KvOp, ctx: &mut Context<KvBatch>) {
        let object = op.object();
        let lane = match op.kind() {
            OpKind::Write => Lane::Writer,
            OpKind::Read => Lane::Reader,
        };
        if queued_ticks > 0 && self.obs.enabled() {
            let behind = self
                .backlog
                .get(&(object, lane))
                .map_or(0, |q| q.len() as u64);
            self.obs.with_tag(object.0).emit(
                TraceKind::QueueWait,
                ctx.now().ticks(),
                ctx.me().0 as u64,
                lane_tag(lane),
                queued_ticks,
                behind,
            );
        }
        self.lane_meta.insert((object, lane), (seq, queued_ticks));
        match op {
            KvOp::Write { object, value } => {
                let (rqs, servers, obs) = (&self.rqs, &self.servers, &self.obs);
                let eager = self.pipeline > 1;
                let timeout = CLIENT_TIMEOUT.saturating_mul(self.pipeline as u64);
                let writer = self.writers.entry(object).or_insert_with(|| {
                    let mut w = Writer::new(rqs.clone(), servers.clone());
                    w.set_obs(obs.with_tag(object.0));
                    w.set_eager_completion(eager);
                    w.set_round_timeout(timeout);
                    w
                });
                let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                writer.start_write(value, &mut inner);
                self.absorb(object, Lane::Writer, inner, ctx);
                self.arm_retry(object, Lane::Writer, ctx);
            }
            KvOp::Read { object } => {
                let (rqs, servers, obs) = (&self.rqs, &self.servers, &self.obs);
                let eager = self.pipeline > 1;
                let timeout = CLIENT_TIMEOUT.saturating_mul(self.pipeline as u64);
                let reader = self.readers.entry(object).or_insert_with(|| {
                    let mut r = Reader::new(rqs.clone(), servers.clone());
                    r.set_obs(obs.with_tag(object.0));
                    r.set_eager_completion(eager);
                    r.set_round_timeout(timeout);
                    r
                });
                let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                reader.start_read(&mut inner);
                self.absorb(object, Lane::Reader, inner, ctx);
                self.arm_retry(object, Lane::Reader, ctx);
            }
        }
    }

    /// Launches the next backlogged op of a lane that just went idle —
    /// in the same step, so its round-1 messages ride the same flush.
    fn pump(&mut self, object: ObjectId, lane: Lane, ctx: &mut Context<KvBatch>) {
        if !self.lane_idle(object, lane) {
            return;
        }
        let Some(q) = self.backlog.get_mut(&(object, lane)) else {
            return;
        };
        let Some((seq, admitted_at, op)) = q.pop_front() else {
            return;
        };
        let queued = ctx.now().ticks().saturating_sub(admitted_at.ticks());
        self.launch(seq, queued, op, ctx);
    }

    /// Folds one inner step's outputs into the client state: buffers
    /// sends, re-arms timers on the outer context, forwards cancellations
    /// and harvests newly completed operations.
    fn absorb(
        &mut self,
        object: ObjectId,
        lane: Lane,
        inner: Context<StorageMsg>,
        ctx: &mut Context<KvBatch>,
    ) {
        self.inner_counter = inner.timer_counter_snapshot();
        let (outbox, timers, cancelled) = inner.into_outputs();
        self.pending.absorb(object, lane, outbox);
        for (delay, inner_token) in timers {
            let outer = ctx.set_timer(delay);
            self.timer_routes.insert(
                outer.0,
                TimerRoute {
                    object,
                    lane,
                    inner: inner_token,
                },
            );
            self.timer_back.insert(inner_token.0, outer.0);
        }
        for inner_token in cancelled {
            if let Some(outer) = self.timer_back.remove(&inner_token.0) {
                self.timer_routes.remove(&outer);
                ctx.cancel_timer(TimerToken(outer));
            }
        }
        self.harvest(object, lane);
        self.settle_retry(object, lane, ctx);
        self.pump(object, lane, ctx);
    }

    /// `true` iff the `(object, lane)` inner automaton has no operation
    /// in progress.
    fn lane_idle(&self, object: ObjectId, lane: Lane) -> bool {
        match lane {
            Lane::Writer => self.writers.get(&object).is_none_or(Writer::is_idle),
            Lane::Reader => self.readers.get(&object).is_none_or(Reader::is_idle),
        }
    }

    /// Arms the retry watchdog for a just-invoked operation.
    fn arm_retry(&mut self, object: ObjectId, lane: Lane, ctx: &mut Context<KvBatch>) {
        if self.retry.max_retries == 0 || self.lane_idle(object, lane) {
            return;
        }
        let delay = self.retry_delay(object, lane, ctx.me(), 0);
        let token = ctx.set_timer(delay);
        self.retry_timers.insert(token.0, (object, lane));
        self.lane_retry.insert(
            (object, lane),
            LaneRetry {
                attempt: 0,
                invoked_at: ctx.now(),
                token: token.0,
                delay,
            },
        );
    }

    /// Cancels the watchdog once its operation has completed.
    fn settle_retry(&mut self, object: ObjectId, lane: Lane, ctx: &mut Context<KvBatch>) {
        if !self.lane_idle(object, lane) {
            return;
        }
        if let Some(st) = self.lane_retry.remove(&(object, lane)) {
            self.retry_timers.remove(&st.token);
            ctx.cancel_timer(TimerToken(st.token));
        }
    }

    fn retry_seed(&self, object: ObjectId, lane: Lane, me: NodeId) -> u64 {
        rqs_sim::fnv1a_fold(rqs_sim::fnv1a_fold(me.0 as u64, object.0), lane_bit(lane))
    }

    /// Watchdog delay for `attempt`, scaled by the pipeline depth: a
    /// deeper pipeline queues proportionally more self-induced work
    /// ahead of every reply, and nudging at single-op cadence under
    /// that queueing turns the watchdog into a re-broadcast storm that
    /// feeds the very congestion it mistakes for loss. Depth 1
    /// multiplies by one, so the classic watchdog schedule is
    /// untouched.
    fn retry_delay(&self, object: ObjectId, lane: Lane, me: NodeId, attempt: u32) -> u64 {
        self.retry
            .backoff(self.retry_seed(object, lane, me), attempt)
            .saturating_mul(self.pipeline as u64)
    }

    /// Watchdog expiry: nudge the still-pending operation (re-broadcast
    /// its current round — never re-invoke) and re-arm with exponential
    /// backoff until the retry count or deadline runs out.
    fn fire_retry(&mut self, object: ObjectId, lane: Lane, ctx: &mut Context<KvBatch>) {
        let Some(mut st) = self.lane_retry.remove(&(object, lane)) else {
            return; // already settled
        };
        if self.lane_idle(object, lane) {
            return; // completed in the same step the timer fired
        }
        self.retry_stats.retries_issued += 1;
        self.retry_stats.backoff_ticks += st.delay;
        *self.lane_nudges.entry((object, lane)).or_insert(0) += 1;
        if self.obs.enabled() {
            self.obs.with_tag(object.0).emit(
                TraceKind::RetryNudged,
                ctx.now().ticks(),
                ctx.me().0 as u64,
                lane_tag(lane),
                st.attempt as u64,
                st.delay,
            );
        }
        let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
        let resent = match lane {
            Lane::Writer => self
                .writers
                .get_mut(&object)
                .is_some_and(|w| w.resend_round(&mut inner)),
            Lane::Reader => self
                .readers
                .get_mut(&object)
                .is_some_and(|r| r.resend_round(&mut inner)),
        };
        if resent {
            self.absorb(object, lane, inner, ctx);
        }
        st.attempt += 1;
        let elapsed = ctx.now().ticks().saturating_sub(st.invoked_at.ticks());
        if st.attempt >= self.retry.max_retries || elapsed >= self.retry.deadline {
            self.retry_stats.exhausted += 1;
            return; // budget spent: the op stays on protocol liveness alone
        }
        let delay = self.retry_delay(object, lane, ctx.me(), st.attempt);
        let token = ctx.set_timer(delay);
        st.token = token.0;
        st.delay = delay;
        self.retry_timers.insert(token.0, (object, lane));
        self.lane_retry.insert((object, lane), st);
    }

    /// Pulls newly completed outcomes from the inner automaton on
    /// `(object, lane)` into the flat outcome log.
    fn harvest(&mut self, object: ObjectId, lane: Lane) {
        match lane {
            Lane::Writer => {
                let Some(w) = self.writers.get(&object) else {
                    return;
                };
                let cursor = self.taken_w.entry(object).or_insert(0);
                for out in &w.outcomes()[*cursor..] {
                    let retries = self.lane_nudges.remove(&(object, lane)).unwrap_or(0);
                    let (seq, queued_ticks) =
                        self.lane_meta.remove(&(object, lane)).unwrap_or((0, 0));
                    debug_assert!(
                        self.lane_done
                            .insert((object, lane), seq)
                            .is_none_or(|prev| prev < seq),
                        "lane outcomes must keep program order"
                    );
                    self.outcomes.push(KvOutcome {
                        object,
                        kind: OpKind::Write,
                        pair: TsVal::new(out.ts, out.val.clone()),
                        rounds: out.rounds,
                        invoked_at: out.invoked_at,
                        completed_at: out.completed_at,
                        retries,
                        seq,
                        queued_ticks,
                    });
                    self.in_flight -= 1;
                    *cursor += 1;
                }
            }
            Lane::Reader => {
                let Some(r) = self.readers.get(&object) else {
                    return;
                };
                let cursor = self.taken_r.entry(object).or_insert(0);
                for out in &r.outcomes()[*cursor..] {
                    let retries = self.lane_nudges.remove(&(object, lane)).unwrap_or(0);
                    let (seq, queued_ticks) =
                        self.lane_meta.remove(&(object, lane)).unwrap_or((0, 0));
                    debug_assert!(
                        self.lane_done
                            .insert((object, lane), seq)
                            .is_none_or(|prev| prev < seq),
                        "lane outcomes must keep program order"
                    );
                    self.outcomes.push(KvOutcome {
                        object,
                        kind: OpKind::Read,
                        pair: out.returned.clone(),
                        rounds: out.rounds,
                        invoked_at: out.invoked_at,
                        completed_at: out.completed_at,
                        retries,
                        seq,
                        queued_ticks,
                    });
                    self.in_flight -= 1;
                    *cursor += 1;
                }
            }
        }
    }

    /// Sends every buffered item as one batch per destination.
    fn flush(&mut self, ctx: &mut Context<KvBatch>) {
        self.pending.flush(ctx);
    }

    /// Routes one incoming item to the inner automaton it addresses.
    fn dispatch(&mut self, from: NodeId, item: KvItem, ctx: &mut Context<KvBatch>) {
        let KvItem { object, lane, msg } = item;
        match lane {
            Lane::Writer => {
                let Some(writer) = self.writers.get_mut(&object) else {
                    return; // stale reply for an automaton never created
                };
                let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                writer.on_message(from, msg, &mut inner);
                self.absorb(object, Lane::Writer, inner, ctx);
            }
            Lane::Reader => {
                let Some(reader) = self.readers.get_mut(&object) else {
                    return;
                };
                let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                reader.on_message(from, msg, &mut inner);
                self.absorb(object, Lane::Reader, inner, ctx);
            }
        }
    }
}

impl Automaton<KvBatch> for KvClient {
    fn state_digest(&self) -> u64 {
        let mut acc = rqs_sim::fnv1a(b"kv-client");
        for (obj, w) in &self.writers {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, w.state_digest());
        }
        for (obj, r) in &self.readers {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, r.state_digest());
        }
        for ((obj, lane), st) in &self.lane_retry {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, lane_bit(*lane));
            acc = rqs_sim::fnv1a_fold(acc, st.attempt as u64);
        }
        acc = rqs_sim::fnv1a_fold(acc, self.retry_stats.retries_issued);
        acc = rqs_sim::fnv1a_fold(acc, self.next_seq);
        for ((obj, lane), q) in &self.backlog {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, lane_bit(*lane));
            acc = rqs_sim::fnv1a_fold(acc, q.len() as u64);
        }
        rqs_sim::fnv1a_fold(acc, self.in_flight as u64)
    }

    fn on_message(&mut self, from: NodeId, batch: KvBatch, ctx: &mut Context<KvBatch>) {
        for item in batch.0 {
            self.dispatch(from, item, ctx);
        }
        self.flush(ctx);
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<KvBatch>) {
        if let Some((object, lane)) = self.retry_timers.remove(&timer.0) {
            self.fire_retry(object, lane, ctx);
            self.flush(ctx);
            return;
        }
        let Some(route) = self.timer_routes.remove(&timer.0) else {
            return; // cancelled or unknown
        };
        self.timer_back.remove(&route.inner.0);
        match route.lane {
            Lane::Writer => {
                if let Some(writer) = self.writers.get_mut(&route.object) {
                    let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                    writer.on_timer(route.inner, &mut inner);
                    self.absorb(route.object, Lane::Writer, inner, ctx);
                }
            }
            Lane::Reader => {
                if let Some(reader) = self.readers.get_mut(&route.object) {
                    let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                    reader.on_timer(route.inner, &mut inner);
                    self.absorb(route.object, Lane::Reader, inner, ctx);
                }
            }
        }
        self.flush(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    fn client() -> KvClient {
        let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
        let servers: Vec<NodeId> = (0..5).map(NodeId).collect();
        KvClient::new(rqs, servers, [ObjectId(0), ObjectId(2)])
    }

    fn ctx() -> Context<KvBatch> {
        Context::new(NodeId(5), Time::ZERO, 0)
    }

    #[test]
    fn batched_writes_coalesce_per_server() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![
                KvOp::Write {
                    object: ObjectId(0),
                    value: Value::from(1u64),
                },
                KvOp::Write {
                    object: ObjectId(2),
                    value: Value::from(2u64),
                },
            ],
            &mut cx,
        );
        assert_eq!(c.in_flight(), 2);
        // 5 servers → 5 envelopes, each carrying BOTH round-1 writes.
        assert_eq!(cx.sent().len(), 5);
        for (_, batch) in cx.sent() {
            assert_eq!(batch.len(), 2);
        }
        // 2 inner round timers re-armed on the outer context, plus one
        // retry watchdog per op.
        assert_eq!(cx.armed_timers().len(), 4);
    }

    #[test]
    #[should_panic(expected = "SWMR violation")]
    fn writing_unowned_object_rejected() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![KvOp::Write {
                object: ObjectId(1),
                value: Value::from(1u64),
            }],
            &mut cx,
        );
    }

    #[test]
    fn reads_allowed_on_any_object() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![KvOp::Read {
                object: ObjectId(1),
            }],
            &mut cx,
        );
        assert_eq!(c.in_flight(), 1);
        assert_eq!(cx.sent().len(), 5);
    }

    #[test]
    fn stale_reply_for_unknown_object_ignored() {
        let mut c = client();
        let mut cx = ctx();
        c.on_message(
            NodeId(0),
            KvBatch(vec![KvItem {
                object: ObjectId(9),
                lane: Lane::Writer,
                msg: StorageMsg::WrAck { ts: 1, rnd: 1 },
            }]),
            &mut cx,
        );
        assert!(cx.sent().is_empty());
        assert_eq!(c.in_flight(), 0);
    }

    fn stuck_write_client(policy: RetryPolicy) -> (KvClient, Context<KvBatch>) {
        let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
        let servers: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut c = KvClient::with_retry(rqs, servers, [ObjectId(0)], policy);
        let mut cx = ctx();
        c.start_ops(
            vec![KvOp::Write {
                object: ObjectId(0),
                value: Value::from(1u64),
            }],
            &mut cx,
        );
        (c, cx)
    }

    #[test]
    fn watchdog_nudges_stuck_op_with_exponential_backoff() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: 10,
            max_backoff: 40,
            deadline: 10_000,
        };
        let (mut c, cx) = stuck_write_client(policy);
        // Two timers armed: the inner round timer, then the watchdog.
        let timers = cx.armed_timers().to_vec();
        assert_eq!(timers.len(), 2);
        let (delay0, watchdog) = timers[1];
        assert!((10..=15).contains(&delay0), "base + jitter ≤ base/2");
        // No acks ever arrive; fire the watchdog: round 1 is re-broadcast.
        let mut now = delay0;
        let mut cx2 = Context::new(NodeId(5), Time(now), 1000);
        c.on_timer(watchdog, &mut cx2);
        assert_eq!(c.retry_stats().retries_issued, 1);
        assert_eq!(c.retry_stats().backoff_ticks, delay0);
        assert_eq!(cx2.sent().len(), 5, "nudge re-broadcast to all servers");
        for (_, batch) in cx2.sent() {
            assert_eq!(batch.len(), 1);
        }
        // The next watchdog delay doubled (modulo jitter).
        let next = cx2.armed_timers().to_vec();
        assert_eq!(next.len(), 1);
        let (delay1, watchdog1) = next[0];
        assert!((20..=25).contains(&delay1), "2·base + jitter");
        // Retry 2, then retry 3 exhausts the budget: no further timer.
        now += delay1;
        let mut cx3 = Context::new(NodeId(5), Time(now), 2000);
        c.on_timer(watchdog1, &mut cx3);
        let (delay2, watchdog2) = cx3.armed_timers()[0];
        assert!((40..=45).contains(&delay2), "capped at max_backoff");
        now += delay2;
        let mut cx4 = Context::new(NodeId(5), Time(now), 3000);
        c.on_timer(watchdog2, &mut cx4);
        assert_eq!(c.retry_stats().retries_issued, 3);
        assert_eq!(c.retry_stats().exhausted, 1);
        assert!(cx4.armed_timers().is_empty(), "budget spent: no re-arm");
        assert_eq!(c.in_flight(), 1, "the op itself is never abandoned");
    }

    #[test]
    fn watchdog_backoff_is_deterministic() {
        let run = || {
            let (c, cx) = stuck_write_client(RetryPolicy::default());
            (
                cx.armed_timers().to_vec(),
                c.retry_stats(),
                c.state_digest(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn completed_op_cancels_watchdog_and_counts_once() {
        let (mut c, cx) = stuck_write_client(RetryPolicy::default());
        let (_, round_timer) = cx.armed_timers()[0];
        let (_, watchdog) = cx.armed_timers()[1];
        // A class-1 quorum acks, then the round timer fires: completed.
        for i in 0..4 {
            let mut cxa = Context::new(NodeId(5), Time(2), 100 + i as u64);
            c.on_message(
                NodeId(i),
                KvBatch(vec![KvItem {
                    object: ObjectId(0),
                    lane: Lane::Writer,
                    msg: StorageMsg::WrAck { ts: 1, rnd: 1 },
                }]),
                &mut cxa,
            );
        }
        let mut cxt = Context::new(NodeId(5), Time(3), 500);
        c.on_timer(round_timer, &mut cxt);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.outcomes().len(), 1);
        assert!(
            cxt.cancelled_timers().contains(&watchdog),
            "completion cancels the watchdog"
        );
        // A stale watchdog expiry is inert: no resend, no double-count.
        let mut cxs = Context::new(NodeId(5), Time(9), 600);
        c.on_timer(watchdog, &mut cxs);
        assert!(cxs.sent().is_empty());
        assert_eq!(c.retry_stats().retries_issued, 0);
        assert_eq!(c.outcomes().len(), 1);
    }

    #[test]
    fn disabled_policy_arms_no_watchdog() {
        let (c, cx) = stuck_write_client(RetryPolicy::disabled());
        assert_eq!(cx.armed_timers().len(), 1, "only the inner round timer");
        assert_eq!(c.retry_stats(), RetryStats::default());
    }

    #[test]
    fn pipelined_ops_queue_and_launch_in_program_order() {
        let mut c = client();
        c.set_pipeline(3);
        assert_eq!(c.pipeline(), 3);
        let mut cx = ctx();
        let write = |v: u64| KvOp::Write {
            object: ObjectId(0),
            value: Value::from(v),
        };
        c.start_ops(vec![write(1), write(2), write(3)], &mut cx);
        // All three admitted, but only the first is on the wire: 5
        // envelopes carrying one write each, two ops backlogged.
        assert_eq!(c.in_flight(), 3);
        assert_eq!(c.backlogged(), 2);
        assert_eq!(cx.sent().len(), 5);
        for (_, batch) in cx.sent() {
            assert_eq!(batch.len(), 1);
        }
        // Complete write 1: a quorum acks, then the round timer fires.
        for i in 0..4 {
            let mut cxa = Context::new(NodeId(5), Time(2), 100 + i as u64);
            c.on_message(
                NodeId(i),
                KvBatch(vec![KvItem {
                    object: ObjectId(0),
                    lane: Lane::Writer,
                    msg: StorageMsg::WrAck { ts: 1, rnd: 1 },
                }]),
                &mut cxa,
            );
        }
        let (_, round_timer) = cx.armed_timers()[0];
        let mut cxt = Context::new(NodeId(5), Time(3), 500);
        c.on_timer(round_timer, &mut cxt);
        // Write 2 launched in the same step write 1 completed: its
        // round-1 broadcast rides the same flush.
        assert_eq!(c.outcomes().len(), 1);
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.backlogged(), 1);
        assert_eq!(cxt.sent().len(), 5);
        let first = &c.outcomes()[0];
        assert_eq!(first.seq, 0);
        assert_eq!(first.queued_ticks, 0);
        // Complete write 2 (ts 2): its outcome records the queue wait
        // (admitted at t0, launched at t3) and a larger seq.
        for i in 0..4 {
            let mut cxa = Context::new(NodeId(5), Time(4), 600 + i as u64);
            c.on_message(
                NodeId(i),
                KvBatch(vec![KvItem {
                    object: ObjectId(0),
                    lane: Lane::Writer,
                    msg: StorageMsg::WrAck { ts: 2, rnd: 1 },
                }]),
                &mut cxa,
            );
        }
        let (_, round_timer2) = cxt.armed_timers()[0];
        let mut cxt2 = Context::new(NodeId(5), Time(5), 900);
        c.on_timer(round_timer2, &mut cxt2);
        assert_eq!(c.outcomes().len(), 2);
        let second = &c.outcomes()[1];
        assert_eq!(second.seq, 1);
        assert_eq!(second.queued_ticks, 3, "admitted t0, launched t3");
        assert_eq!(c.backlogged(), 0);
        assert_eq!(c.in_flight(), 1, "write 3 now active");
    }

    #[test]
    #[should_panic(expected = "pipeline depth 1 exceeded")]
    fn depth_one_rejects_second_op_on_a_busy_lane() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![
                KvOp::Read {
                    object: ObjectId(1),
                },
                KvOp::Read {
                    object: ObjectId(1),
                },
            ],
            &mut cx,
        );
    }

    #[test]
    fn op_accessors() {
        let w = KvOp::Write {
            object: ObjectId(3),
            value: Value::from(1u64),
        };
        assert_eq!(w.object(), ObjectId(3));
        assert_eq!(w.kind(), OpKind::Write);
        let r = KvOp::Read {
            object: ObjectId(4),
        };
        assert_eq!(r.object(), ObjectId(4));
        assert_eq!(r.kind(), OpKind::Read);
    }
}
