//! The multi-object client automaton.
//!
//! A [`KvClient`] owns a disjoint set of objects (it is the single writer
//! for each of them) and can read any object. Internally it multiplexes
//! one unmodified [`Writer`] per owned object and one unmodified
//! [`Reader`] per object it has read, so the per-object protocol is
//! *exactly* the paper's algorithm — the KV layer adds only routing,
//! timer bookkeeping and batching:
//!
//! - every inner send is tagged with its object and lane and buffered;
//!   at the end of the step the buffer is flushed as one [`KvBatch`] per
//!   destination (the batching that makes `B` concurrent operations cost
//!   far fewer than `B×` envelopes);
//! - inner timers are re-armed on the outer context and a token map
//!   routes expirations back to the automaton that armed them;
//! - completed inner operations are harvested into a flat outcome log
//!   with object tags, rounds and invocation/response times.

use crate::messages::{BatchAccumulator, KvBatch, KvItem, Lane};
use crate::object::ObjectId;
use rqs_core::Rqs;
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken};
use rqs_storage::reader::Reader;
use rqs_storage::writer::Writer;
use rqs_storage::{OpKind, StorageMsg, TsVal, Value};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One operation a client can be asked to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Write `value` to `object` (the client must own the object).
    Write {
        /// Target object.
        object: ObjectId,
        /// Value to write (must not be `⊥`).
        value: Value,
    },
    /// Read `object` (any client may read any object).
    Read {
        /// Target object.
        object: ObjectId,
    },
}

impl KvOp {
    /// The object the operation touches.
    pub fn object(&self) -> ObjectId {
        match self {
            KvOp::Write { object, .. } | KvOp::Read { object } => *object,
        }
    }

    /// Write or read.
    pub fn kind(&self) -> OpKind {
        match self {
            KvOp::Write { .. } => OpKind::Write,
            KvOp::Read { .. } => OpKind::Read,
        }
    }
}

/// Record of one completed KV operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvOutcome {
    /// The object operated on.
    pub object: ObjectId,
    /// Write or read.
    pub kind: OpKind,
    /// The written pair (writes) or returned pair (reads).
    pub pair: TsVal,
    /// Protocol rounds the operation took.
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

#[derive(Debug)]
struct TimerRoute {
    object: ObjectId,
    lane: Lane,
    inner: TimerToken,
}

/// The multi-object KV client automaton.
#[derive(Debug)]
pub struct KvClient {
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    owned: BTreeSet<ObjectId>,
    writers: BTreeMap<ObjectId, Writer>,
    readers: BTreeMap<ObjectId, Reader>,
    /// Per-destination outgoing buffer, flushed once per step.
    pending: BatchAccumulator,
    /// Monotone counter seeding inner contexts: inner tokens are unique
    /// across all inner automata of this client.
    inner_counter: u64,
    /// Outer timer token → the inner automaton and token it stands for.
    timer_routes: BTreeMap<u64, TimerRoute>,
    /// Inner token → the outer token armed for it (for cancellation).
    timer_back: BTreeMap<u64, u64>,
    /// Harvested writer outcomes per object (consumption cursor).
    taken_w: BTreeMap<ObjectId, usize>,
    /// Harvested reader outcomes per object.
    taken_r: BTreeMap<ObjectId, usize>,
    outcomes: Vec<KvOutcome>,
    in_flight: usize,
}

impl KvClient {
    /// A client over `rqs` whose universe member `i` is node `servers[i]`,
    /// owning (solely allowed to write) the objects in `owned`.
    pub fn new(
        rqs: Arc<Rqs>,
        servers: Vec<NodeId>,
        owned: impl IntoIterator<Item = ObjectId>,
    ) -> Self {
        KvClient {
            rqs,
            servers,
            owned: owned.into_iter().collect(),
            writers: BTreeMap::new(),
            readers: BTreeMap::new(),
            pending: BatchAccumulator::new(),
            inner_counter: 0,
            timer_routes: BTreeMap::new(),
            timer_back: BTreeMap::new(),
            taken_w: BTreeMap::new(),
            taken_r: BTreeMap::new(),
            outcomes: Vec::new(),
            in_flight: 0,
        }
    }

    /// Objects this client owns.
    pub fn owned(&self) -> &BTreeSet<ObjectId> {
        &self.owned
    }

    /// Operations invoked but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Completed operations, in completion order.
    pub fn outcomes(&self) -> &[KvOutcome] {
        &self.outcomes
    }

    /// Starts a batch of operations in one step: all their round-1
    /// messages leave in one [`KvBatch`] per server.
    ///
    /// # Panics
    ///
    /// Panics if an operation targets an object with one already in
    /// flight on the same lane (well-formed clients), or if a write
    /// targets an object this client does not own (SWMR violation).
    pub fn start_ops(&mut self, ops: Vec<KvOp>, ctx: &mut Context<KvBatch>) {
        for op in ops {
            match op {
                KvOp::Write { object, value } => {
                    assert!(
                        self.owned.contains(&object),
                        "client is not the owner of {object}: SWMR violation"
                    );
                    let (rqs, servers) = (&self.rqs, &self.servers);
                    let writer = self
                        .writers
                        .entry(object)
                        .or_insert_with(|| Writer::new(rqs.clone(), servers.clone()));
                    let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                    writer.start_write(value, &mut inner);
                    self.in_flight += 1;
                    self.absorb(object, Lane::Writer, inner, ctx);
                }
                KvOp::Read { object } => {
                    let (rqs, servers) = (&self.rqs, &self.servers);
                    let reader = self
                        .readers
                        .entry(object)
                        .or_insert_with(|| Reader::new(rqs.clone(), servers.clone()));
                    let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                    reader.start_read(&mut inner);
                    self.in_flight += 1;
                    self.absorb(object, Lane::Reader, inner, ctx);
                }
            }
        }
        self.flush(ctx);
    }

    /// Folds one inner step's outputs into the client state: buffers
    /// sends, re-arms timers on the outer context, forwards cancellations
    /// and harvests newly completed operations.
    fn absorb(
        &mut self,
        object: ObjectId,
        lane: Lane,
        inner: Context<StorageMsg>,
        ctx: &mut Context<KvBatch>,
    ) {
        self.inner_counter = inner.timer_counter_snapshot();
        let (outbox, timers, cancelled) = inner.into_outputs();
        self.pending.absorb(object, lane, outbox);
        for (delay, inner_token) in timers {
            let outer = ctx.set_timer(delay);
            self.timer_routes.insert(
                outer.0,
                TimerRoute {
                    object,
                    lane,
                    inner: inner_token,
                },
            );
            self.timer_back.insert(inner_token.0, outer.0);
        }
        for inner_token in cancelled {
            if let Some(outer) = self.timer_back.remove(&inner_token.0) {
                self.timer_routes.remove(&outer);
                ctx.cancel_timer(TimerToken(outer));
            }
        }
        self.harvest(object, lane);
    }

    /// Pulls newly completed outcomes from the inner automaton on
    /// `(object, lane)` into the flat outcome log.
    fn harvest(&mut self, object: ObjectId, lane: Lane) {
        match lane {
            Lane::Writer => {
                let Some(w) = self.writers.get(&object) else {
                    return;
                };
                let cursor = self.taken_w.entry(object).or_insert(0);
                for out in &w.outcomes()[*cursor..] {
                    self.outcomes.push(KvOutcome {
                        object,
                        kind: OpKind::Write,
                        pair: TsVal::new(out.ts, out.val.clone()),
                        rounds: out.rounds,
                        invoked_at: out.invoked_at,
                        completed_at: out.completed_at,
                    });
                    self.in_flight -= 1;
                    *cursor += 1;
                }
            }
            Lane::Reader => {
                let Some(r) = self.readers.get(&object) else {
                    return;
                };
                let cursor = self.taken_r.entry(object).or_insert(0);
                for out in &r.outcomes()[*cursor..] {
                    self.outcomes.push(KvOutcome {
                        object,
                        kind: OpKind::Read,
                        pair: out.returned.clone(),
                        rounds: out.rounds,
                        invoked_at: out.invoked_at,
                        completed_at: out.completed_at,
                    });
                    self.in_flight -= 1;
                    *cursor += 1;
                }
            }
        }
    }

    /// Sends every buffered item as one batch per destination.
    fn flush(&mut self, ctx: &mut Context<KvBatch>) {
        self.pending.flush(ctx);
    }

    /// Routes one incoming item to the inner automaton it addresses.
    fn dispatch(&mut self, from: NodeId, item: KvItem, ctx: &mut Context<KvBatch>) {
        let KvItem { object, lane, msg } = item;
        match lane {
            Lane::Writer => {
                let Some(writer) = self.writers.get_mut(&object) else {
                    return; // stale reply for an automaton never created
                };
                let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                writer.on_message(from, msg, &mut inner);
                self.absorb(object, Lane::Writer, inner, ctx);
            }
            Lane::Reader => {
                let Some(reader) = self.readers.get_mut(&object) else {
                    return;
                };
                let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                reader.on_message(from, msg, &mut inner);
                self.absorb(object, Lane::Reader, inner, ctx);
            }
        }
    }
}

impl Automaton<KvBatch> for KvClient {
    fn state_digest(&self) -> u64 {
        let mut acc = rqs_sim::fnv1a(b"kv-client");
        for (obj, w) in &self.writers {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, w.state_digest());
        }
        for (obj, r) in &self.readers {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, r.state_digest());
        }
        rqs_sim::fnv1a_fold(acc, self.in_flight as u64)
    }

    fn on_message(&mut self, from: NodeId, batch: KvBatch, ctx: &mut Context<KvBatch>) {
        for item in batch.0 {
            self.dispatch(from, item, ctx);
        }
        self.flush(ctx);
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<KvBatch>) {
        let Some(route) = self.timer_routes.remove(&timer.0) else {
            return; // cancelled or unknown
        };
        self.timer_back.remove(&route.inner.0);
        match route.lane {
            Lane::Writer => {
                if let Some(writer) = self.writers.get_mut(&route.object) {
                    let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                    writer.on_timer(route.inner, &mut inner);
                    self.absorb(route.object, Lane::Writer, inner, ctx);
                }
            }
            Lane::Reader => {
                if let Some(reader) = self.readers.get_mut(&route.object) {
                    let mut inner = Context::new(ctx.me(), ctx.now(), self.inner_counter);
                    reader.on_timer(route.inner, &mut inner);
                    self.absorb(route.object, Lane::Reader, inner, ctx);
                }
            }
        }
        self.flush(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    fn client() -> KvClient {
        let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
        let servers: Vec<NodeId> = (0..5).map(NodeId).collect();
        KvClient::new(rqs, servers, [ObjectId(0), ObjectId(2)])
    }

    fn ctx() -> Context<KvBatch> {
        Context::new(NodeId(5), Time::ZERO, 0)
    }

    #[test]
    fn batched_writes_coalesce_per_server() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![
                KvOp::Write {
                    object: ObjectId(0),
                    value: Value::from(1u64),
                },
                KvOp::Write {
                    object: ObjectId(2),
                    value: Value::from(2u64),
                },
            ],
            &mut cx,
        );
        assert_eq!(c.in_flight(), 2);
        // 5 servers → 5 envelopes, each carrying BOTH round-1 writes.
        assert_eq!(cx.sent().len(), 5);
        for (_, batch) in cx.sent() {
            assert_eq!(batch.len(), 2);
        }
        // 2 inner round timers re-armed on the outer context.
        assert_eq!(cx.armed_timers().len(), 2);
    }

    #[test]
    #[should_panic(expected = "SWMR violation")]
    fn writing_unowned_object_rejected() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![KvOp::Write {
                object: ObjectId(1),
                value: Value::from(1u64),
            }],
            &mut cx,
        );
    }

    #[test]
    fn reads_allowed_on_any_object() {
        let mut c = client();
        let mut cx = ctx();
        c.start_ops(
            vec![KvOp::Read {
                object: ObjectId(1),
            }],
            &mut cx,
        );
        assert_eq!(c.in_flight(), 1);
        assert_eq!(cx.sent().len(), 5);
    }

    #[test]
    fn stale_reply_for_unknown_object_ignored() {
        let mut c = client();
        let mut cx = ctx();
        c.on_message(
            NodeId(0),
            KvBatch(vec![KvItem {
                object: ObjectId(9),
                lane: Lane::Writer,
                msg: StorageMsg::WrAck { ts: 1, rnd: 1 },
            }]),
            &mut cx,
        );
        assert!(cx.sent().is_empty());
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn op_accessors() {
        let w = KvOp::Write {
            object: ObjectId(3),
            value: Value::from(1u64),
        };
        assert_eq!(w.object(), ObjectId(3));
        assert_eq!(w.kind(), OpKind::Write);
        let r = KvOp::Read {
            object: ObjectId(4),
        };
        assert_eq!(r.object(), ObjectId(4));
        assert_eq!(r.kind(), OpKind::Read);
    }
}
