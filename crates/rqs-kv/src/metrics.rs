//! Run metrics: throughput, round histograms, fast-path ratio, message
//! accounting, per-op latency percentiles and streaming-checker counters.

use crate::client::{KvOutcome, RetryStats};
use rqs_obs::{Attribution, LatencyHistogram};
use rqs_storage::CheckerStats;
use std::collections::BTreeMap;

/// Histogram of protocol rounds per operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundHistogram {
    counts: BTreeMap<usize, usize>,
}

impl RoundHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        RoundHistogram::default()
    }

    /// Records one operation that took `rounds` rounds.
    pub fn record(&mut self, rounds: usize) {
        *self.counts.entry(rounds).or_insert(0) += 1;
    }

    /// Total operations recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Operations that completed at class-1 speed (one round).
    pub fn fast(&self) -> usize {
        self.counts.get(&1).copied().unwrap_or(0)
    }

    /// Fraction of operations completing at class-1 speed (`NaN`-free:
    /// 0 when empty).
    pub fn fast_path_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.fast() as f64 / total as f64
        }
    }

    /// `(rounds, count)` pairs in ascending round order.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&r, &c)| (r, c))
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RoundHistogram) {
        for (r, c) in other.buckets() {
            *self.counts.entry(r).or_insert(0) += c;
        }
    }

    /// Compact rendering like `1r:37 2r:3`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .counts
            .iter()
            .map(|(r, c)| format!("{r}r:{c}"))
            .collect();
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Metrics of one KV run (either substrate).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KvRunStats {
    /// Operations completed.
    pub ops: usize,
    /// Round histogram over all operations.
    pub rounds: RoundHistogram,
    /// Duration of the run: simulated ticks (sim) or wall-clock
    /// microseconds (threaded runtime).
    pub duration_units: u64,
    /// Network envelopes sent (on either substrate; the runtime counts
    /// them on its outbound network path).
    pub envelopes: usize,
    /// Protocol messages carried inside those envelopes.
    pub items: usize,
    /// Per-operation latency distribution in duration units (completion
    /// minus invocation): a log-bucketed fixed-size histogram, so memory
    /// stays bounded on million-op soaks and percentile queries are
    /// O(buckets) instead of clone-and-sort.
    pub latencies: LatencyHistogram,
    /// Why operations left the one-round fast path (the paper's
    /// degradation conditions), classified at harvest by the deployment.
    pub attribution: Attribution,
    /// Aggregated counters of the deployment's streaming atomicity
    /// checkers (cumulative over the deployment's lifetime; empty when
    /// checking is offloaded to a sidecar).
    pub checker: CheckerStats,
    /// Client retry counters accumulated during this run (nudges issued,
    /// backoff ticks waited, ops whose retry budget ran out).
    pub retries: RetryStats,
}

impl KvRunStats {
    /// Operations per duration unit (per tick / per microsecond).
    pub fn throughput(&self) -> f64 {
        if self.duration_units == 0 {
            0.0
        } else {
            self.ops as f64 / self.duration_units as f64
        }
    }

    /// Envelopes per operation — the number batching drives down.
    pub fn envelopes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.envelopes as f64 / self.ops as f64
        }
    }

    /// Mean protocol messages per envelope (the batching factor).
    pub fn batching_factor(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.items as f64 / self.envelopes as f64
        }
    }

    /// Folds a completed operation into the stats.
    pub fn record_outcome(&mut self, out: &KvOutcome) {
        self.ops += 1;
        self.rounds.record(out.rounds);
        self.latencies.record(
            out.completed_at
                .ticks()
                .saturating_sub(out.invoked_at.ticks()),
        );
    }

    /// Accumulates another run's metrics into `self` — the fold a
    /// segmented run (workload interrupted by crash/restart cycles) uses
    /// to report whole-run numbers. Durations add; histograms, latency
    /// samples and all counters accumulate.
    pub fn merge(&mut self, other: &KvRunStats) {
        self.ops += other.ops;
        self.rounds.merge(&other.rounds);
        self.duration_units += other.duration_units;
        self.envelopes += other.envelopes;
        self.items += other.items;
        self.latencies.merge(&other.latencies);
        self.attribution.merge(&other.attribution);
        self.checker.merge(&other.checker);
        self.retries.merge(&other.retries);
    }

    /// The `p`-th latency percentile in duration units (0 when empty).
    /// `p` is clamped to `[0, 100]`; nearest-rank over the log-bucketed
    /// histogram — exact below 16 units, within one bucket (≤ 12.5%)
    /// above.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.latencies.percentile(p.clamp(0.0, 100.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_ratio() {
        let mut h = RoundHistogram::new();
        assert_eq!(h.fast_path_ratio(), 0.0);
        h.record(1);
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.fast(), 2);
        assert!((h.fast_path_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(h.render(), "1r:2 2r:1 3r:1");
        assert_eq!(
            h.buckets().collect::<Vec<_>>(),
            vec![(1, 2), (2, 1), (3, 1)]
        );
    }

    #[test]
    fn merge_accumulates_every_field() {
        use rqs_obs::SlowPathCause;
        let mut a = KvRunStats {
            ops: 3,
            duration_units: 10,
            envelopes: 6,
            items: 12,
            ..Default::default()
        };
        a.latencies.record(1);
        a.latencies.record(2);
        a.rounds.record(1);
        a.attribution.record(SlowPathCause::FastPath);
        let mut b = KvRunStats {
            ops: 2,
            duration_units: 5,
            envelopes: 4,
            items: 8,
            ..Default::default()
        };
        b.latencies.record(9);
        b.rounds.record(1);
        b.rounds.record(2);
        b.retries.retries_issued = 7;
        b.attribution.record(SlowPathCause::Retry);
        a.merge(&b);
        assert_eq!(a.ops, 5);
        assert_eq!(a.duration_units, 15);
        assert_eq!(a.envelopes, 10);
        assert_eq!(a.items, 20);
        assert_eq!(a.latencies.len(), 3);
        assert_eq!(a.latencies.min(), 1);
        assert_eq!(a.latencies.max(), 9);
        assert_eq!(a.rounds.render(), "1r:2 2r:1");
        assert_eq!(a.retries.retries_issued, 7);
        assert_eq!(a.attribution.count(SlowPathCause::FastPath), 1);
        assert_eq!(a.attribution.count(SlowPathCause::Retry), 1);
    }

    #[test]
    fn stats_derived_quantities() {
        let stats = KvRunStats {
            ops: 10,
            rounds: RoundHistogram::new(),
            duration_units: 50,
            envelopes: 40,
            items: 120,
            ..Default::default()
        };
        assert!((stats.throughput() - 0.2).abs() < 1e-12);
        assert!((stats.envelopes_per_op() - 4.0).abs() < 1e-12);
        assert!((stats.batching_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let mut stats = KvRunStats::default();
        for v in [5u64, 1, 9, 3, 7] {
            stats.latencies.record(v);
        }
        assert_eq!(stats.latency_percentile(50.0), 5);
        assert_eq!(stats.latency_percentile(99.0), 9);
        assert_eq!(stats.latency_percentile(0.0), 1);
        assert_eq!(KvRunStats::default().latency_percentile(50.0), 0);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let stats = KvRunStats::default();
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.envelopes_per_op(), 0.0);
        assert_eq!(stats.batching_factor(), 0.0);
        assert_eq!(RoundHistogram::new().render(), "-");
    }
}
