//! Run metrics: throughput, round histograms, fast-path ratio, message
//! accounting.

use crate::client::KvOutcome;
use std::collections::BTreeMap;

/// Histogram of protocol rounds per operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundHistogram {
    counts: BTreeMap<usize, usize>,
}

impl RoundHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        RoundHistogram::default()
    }

    /// Records one operation that took `rounds` rounds.
    pub fn record(&mut self, rounds: usize) {
        *self.counts.entry(rounds).or_insert(0) += 1;
    }

    /// Total operations recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Operations that completed at class-1 speed (one round).
    pub fn fast(&self) -> usize {
        self.counts.get(&1).copied().unwrap_or(0)
    }

    /// Fraction of operations completing at class-1 speed (`NaN`-free:
    /// 0 when empty).
    pub fn fast_path_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.fast() as f64 / total as f64
        }
    }

    /// `(rounds, count)` pairs in ascending round order.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&r, &c)| (r, c))
    }

    /// Compact rendering like `1r:37 2r:3`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .counts
            .iter()
            .map(|(r, c)| format!("{r}r:{c}"))
            .collect();
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Metrics of one KV run (either substrate).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KvRunStats {
    /// Operations completed.
    pub ops: usize,
    /// Round histogram over all operations.
    pub rounds: RoundHistogram,
    /// Duration of the run: simulated ticks (sim) or wall-clock
    /// microseconds (threaded runtime).
    pub duration_units: u64,
    /// Network envelopes sent (on either substrate; the runtime counts
    /// them on its outbound network path).
    pub envelopes: usize,
    /// Protocol messages carried inside those envelopes.
    pub items: usize,
}

impl KvRunStats {
    /// Operations per duration unit (per tick / per microsecond).
    pub fn throughput(&self) -> f64 {
        if self.duration_units == 0 {
            0.0
        } else {
            self.ops as f64 / self.duration_units as f64
        }
    }

    /// Envelopes per operation — the number batching drives down.
    pub fn envelopes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.envelopes as f64 / self.ops as f64
        }
    }

    /// Mean protocol messages per envelope (the batching factor).
    pub fn batching_factor(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.items as f64 / self.envelopes as f64
        }
    }

    /// Folds a completed operation into the stats.
    pub fn record_outcome(&mut self, out: &KvOutcome) {
        self.ops += 1;
        self.rounds.record(out.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_ratio() {
        let mut h = RoundHistogram::new();
        assert_eq!(h.fast_path_ratio(), 0.0);
        h.record(1);
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.fast(), 2);
        assert!((h.fast_path_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(h.render(), "1r:2 2r:1 3r:1");
        assert_eq!(
            h.buckets().collect::<Vec<_>>(),
            vec![(1, 2), (2, 1), (3, 1)]
        );
    }

    #[test]
    fn stats_derived_quantities() {
        let stats = KvRunStats {
            ops: 10,
            rounds: RoundHistogram::new(),
            duration_units: 50,
            envelopes: 40,
            items: 120,
        };
        assert!((stats.throughput() - 0.2).abs() < 1e-12);
        assert!((stats.envelopes_per_op() - 4.0).abs() < 1e-12);
        assert!((stats.batching_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let stats = KvRunStats::default();
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.envelopes_per_op(), 0.0);
        assert_eq!(stats.batching_factor(), 0.0);
        assert_eq!(RoundHistogram::new().render(), "-");
    }
}
