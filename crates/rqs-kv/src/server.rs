//! The multi-object server automaton and its Byzantine variants.
//!
//! A [`KvServer`] is a bank of per-object benign [`Server`] automata
//! behind one node id: each incoming [`KvBatch`] is unpacked, every item
//! is routed to the state of its object (created on first touch), and all
//! replies produced by the step are re-batched per destination — so a
//! batch of `B` writes costs one request envelope and one reply envelope
//! instead of `2B`.

use crate::messages::{BatchAccumulator, KvBatch, KvItem};
use crate::object::ObjectId;
use rqs_sim::{Automaton, Context, NodeId};
use rqs_storage::history::History;
use rqs_storage::{wal, Server, StorageMsg};
use rqs_store::StoreHandle;
use std::any::Any;
use std::collections::BTreeMap;

/// A benign multi-object storage server.
///
/// With a [`StoreHandle`] attached, every per-object [`Server`] logs its
/// write-ahead deltas to the *shared* store under its object id as tag,
/// and `save_state`/`restore_state` snapshot and rebuild the whole bank
/// at once — a single durable store per node, like a single disk.
#[derive(Clone, Debug, Default)]
pub struct KvServer {
    objects: BTreeMap<ObjectId, Server>,
    store: Option<StoreHandle>,
}

impl KvServer {
    /// A fresh volatile server with no object state.
    pub fn new() -> Self {
        KvServer::default()
    }

    /// A durable server journaling every object to one shared `store`.
    pub fn with_store(store: StoreHandle) -> Self {
        KvServer {
            objects: BTreeMap::new(),
            store: Some(store),
        }
    }

    /// Number of objects this server has state for.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The history stored for `obj` (empty if never touched).
    pub fn history(&self, obj: ObjectId) -> History {
        self.objects
            .get(&obj)
            .map(|s| s.history().clone())
            .unwrap_or_default()
    }

    /// The per-object server for `obj`, created on first touch with the
    /// shared store attached (tagged by object id).
    fn object_server(&mut self, obj: ObjectId) -> &mut Server {
        let store = self.store.clone();
        self.objects.entry(obj).or_insert_with(|| match store {
            Some(s) => Server::with_tagged_store(s, obj.0),
            None => Server::new(),
        })
    }
}

impl Automaton<KvBatch> for KvServer {
    fn state_digest(&self) -> u64 {
        let mut acc = rqs_sim::fnv1a(b"kv-server");
        for (obj, server) in &self.objects {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, server.state_digest());
        }
        acc
    }

    fn on_message(&mut self, from: NodeId, batch: KvBatch, ctx: &mut Context<KvBatch>) {
        // Per-destination reply buffer: everything this step produces for
        // one destination leaves as a single batch.
        let mut replies = BatchAccumulator::new();
        for item in batch.0 {
            let server = self.object_server(item.object);
            let mut inner: Context<StorageMsg> = Context::new(ctx.me(), ctx.now(), 0);
            server.on_message(from, item.msg, &mut inner);
            let (outbox, timers, _cancelled) = inner.into_outputs();
            debug_assert!(timers.is_empty(), "benign servers never arm timers");
            replies.absorb(item.object, item.lane, outbox);
        }
        replies.flush(ctx);
    }

    fn save_state(&mut self) {
        // One snapshot covering every object: the inner servers'
        // `save_state` is never used, because each would install a
        // single-object snapshot into the shared store, clobbering the
        // others.
        if let Some(store) = &self.store {
            let blob =
                wal::encode_histories(self.objects.iter().map(|(obj, s)| (obj.0, s.history())));
            store.install_snapshot(&blob);
        }
    }

    fn restore_state(&mut self) -> usize {
        self.objects.clear();
        let Some(store) = self.store.clone() else {
            return 0;
        };
        // Crash the store once, load it once, and demultiplex the shared
        // log in a single pass — rescanning it per object would make
        // recovery O(objects × log), long enough under thousands of
        // objects to stall the node past its clients' op timeouts.
        store.crash();
        let rec = store.load();
        let (histories, replayed) = wal::restore_histories(&rec);
        for (obj, h) in histories {
            self.object_server(ObjectId(obj)).install_history(h);
        }
        replayed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Byzantine behaviour of a [`KvByzantineServer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ByzantineMode {
    /// Never replies (crash-faulty from the clients' viewpoint).
    Mute,
    /// Acknowledges every write without storing it and reports the empty
    /// history to every read — the multi-object analogue of
    /// [`ForgedServer::initial_state`](rqs_storage::byzantine::ForgedServer).
    Forge,
}

/// A Byzantine multi-object server (for fault injection on both
/// substrates; unlike the scripted single-object forgers it is `Send`).
#[derive(Clone, Debug)]
pub struct KvByzantineServer {
    mode: ByzantineMode,
}

impl KvByzantineServer {
    /// A server behaving per `mode` on every object.
    pub fn new(mode: ByzantineMode) -> Self {
        KvByzantineServer { mode }
    }
}

impl Automaton<KvBatch> for KvByzantineServer {
    fn on_message(&mut self, from: NodeId, batch: KvBatch, ctx: &mut Context<KvBatch>) {
        if self.mode == ByzantineMode::Mute {
            return;
        }
        let mut items = Vec::new();
        for item in batch.0 {
            match item.msg {
                StorageMsg::Wr { ts, rnd, .. } => {
                    // Ack without storing: the write is forgotten.
                    items.push(KvItem {
                        object: item.object,
                        lane: item.lane,
                        msg: StorageMsg::WrAck { ts, rnd },
                    });
                }
                StorageMsg::Rd { read_no, rnd } => {
                    // Forge the initial (empty) history for every object.
                    items.push(KvItem {
                        object: item.object,
                        lane: item.lane,
                        msg: StorageMsg::RdAck {
                            read_no,
                            rnd,
                            history: History::new(),
                        },
                    });
                }
                StorageMsg::WrAck { .. } | StorageMsg::RdAck { .. } => {}
            }
        }
        if !items.is_empty() {
            ctx.send(from, KvBatch(items));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Lane;
    use rqs_sim::Time;
    use rqs_storage::{TsVal, Value};
    use std::collections::BTreeSet;

    fn test_ctx() -> Context<KvBatch> {
        Context::new(NodeId(0), Time::ZERO, 0)
    }

    fn wr(object: u64, lane: Lane, ts: u64, v: u64) -> KvItem {
        KvItem {
            object: ObjectId(object),
            lane,
            msg: StorageMsg::Wr {
                ts,
                val: Value::from(v),
                sets: BTreeSet::new(),
                rnd: 1,
            },
        }
    }

    #[test]
    fn batch_of_writes_acked_in_one_envelope() {
        let mut s = KvServer::new();
        let mut c = test_ctx();
        let batch = KvBatch(vec![
            wr(0, Lane::Writer, 1, 10),
            wr(1, Lane::Writer, 1, 11),
            wr(2, Lane::Writer, 1, 12),
        ]);
        s.on_message(NodeId(9), batch, &mut c);
        assert_eq!(s.object_count(), 3);
        assert_eq!(c.sent().len(), 1, "replies coalesce per destination");
        let (to, reply) = &c.sent()[0];
        assert_eq!(*to, NodeId(9));
        assert_eq!(reply.len(), 3);
        assert!(s
            .history(ObjectId(1))
            .stores(&TsVal::new(1, Value::from(11u64)), 1));
        assert!(s.history(ObjectId(7)).is_empty());
    }

    #[test]
    fn per_object_state_is_isolated() {
        let mut s = KvServer::new();
        let mut c = test_ctx();
        s.on_message(NodeId(3), KvBatch(vec![wr(4, Lane::Writer, 5, 50)]), &mut c);
        assert!(s
            .history(ObjectId(4))
            .stores(&TsVal::new(5, Value::from(50u64)), 1));
        assert!(s.history(ObjectId(5)).is_empty());
    }

    #[test]
    fn lane_is_echoed_in_replies() {
        let mut s = KvServer::new();
        let mut c = test_ctx();
        s.on_message(NodeId(2), KvBatch(vec![wr(0, Lane::Reader, 1, 1)]), &mut c);
        assert_eq!(c.sent()[0].1 .0[0].lane, Lane::Reader);
    }

    #[test]
    fn amnesia_restore_rebuilds_every_object_from_one_store() {
        let store = StoreHandle::mem();
        let mut s = KvServer::with_store(store.clone());
        let mut c = test_ctx();
        s.on_message(
            NodeId(9),
            KvBatch(vec![wr(0, Lane::Writer, 1, 10), wr(7, Lane::Writer, 2, 70)]),
            &mut c,
        );
        s.save_state(); // snapshot both objects
        let mut c2 = test_ctx();
        s.on_message(
            NodeId(9),
            KvBatch(vec![wr(3, Lane::Writer, 1, 30)]),
            &mut c2,
        );
        let before: Vec<_> = [0u64, 3, 7]
            .iter()
            .map(|&o| s.history(ObjectId(o)))
            .collect();

        // Amnesia: fresh automaton over the same store.
        let mut recovered = KvServer::with_store(store.clone());
        let replayed = recovered.restore_state();
        assert_eq!(replayed, 1, "only object 3's delta postdates the snapshot");
        assert_eq!(recovered.object_count(), 3);
        for (i, &o) in [0u64, 3, 7].iter().enumerate() {
            assert_eq!(recovered.history(ObjectId(o)), before[i], "object {o}");
        }
        assert_eq!(store.stats().crashes, 1, "shared store crashed once");
    }

    #[test]
    fn mute_byzantine_says_nothing() {
        let mut s = KvByzantineServer::new(ByzantineMode::Mute);
        let mut c = test_ctx();
        s.on_message(NodeId(1), KvBatch(vec![wr(0, Lane::Writer, 1, 1)]), &mut c);
        assert!(c.sent().is_empty());
    }

    #[test]
    fn forging_byzantine_acks_without_storing() {
        let mut s = KvByzantineServer::new(ByzantineMode::Forge);
        let mut c = test_ctx();
        let batch = KvBatch(vec![
            wr(0, Lane::Writer, 1, 1),
            KvItem {
                object: ObjectId(0),
                lane: Lane::Reader,
                msg: StorageMsg::Rd { read_no: 1, rnd: 1 },
            },
        ]);
        s.on_message(NodeId(1), batch, &mut c);
        let reply = &c.sent()[0].1;
        assert_eq!(reply.len(), 2);
        match &reply.0[1].msg {
            StorageMsg::RdAck { history, .. } => assert!(history.is_empty()),
            other => panic!("expected RdAck, got {other:?}"),
        }
    }
}
