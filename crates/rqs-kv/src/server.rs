//! The multi-object server automaton and its Byzantine variants.
//!
//! A [`KvServer`] is a bank of per-object benign [`Server`] automata
//! behind one node id: each incoming [`KvBatch`] is unpacked, every item
//! is routed to the state of its object (created on first touch), and all
//! replies produced by the step are re-batched per destination — so a
//! batch of `B` writes costs one request envelope and one reply envelope
//! instead of `2B`.
//!
//! On the threaded runtime a server may additionally enable a
//! [worker pool](KvServer::enable_worker_pool): object state is sharded
//! across a fixed set of worker threads (`object.0 % workers`), each
//! worker owning its shard's automata outright — no locks on the hot
//! path — and replying through the runtime's
//! [`NetHandle`](rqs_runtime::NetHandle). Because an object lives on
//! exactly one worker, per-object message order (and per-object WAL
//! append order into the shared store) is preserved; only cross-object
//! reply interleaving changes, which atomicity is indifferent to.

use crate::messages::{BatchAccumulator, KvBatch, KvItem};
use crate::object::ObjectId;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use rqs_runtime::NetHandle;
use rqs_sim::{Automaton, Context, NodeId, Time};
use rqs_storage::history::History;
use rqs_storage::{wal, Server, StorageMsg};
use rqs_store::StoreHandle;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Work shipped to one shard worker of a pooled [`KvServer`].
enum WorkerMsg {
    /// One sender's items for this worker's objects (one step's worth).
    Batch {
        from: NodeId,
        now: Time,
        items: Vec<KvItem>,
    },
    /// Report every `(object, history)` this worker holds.
    Gather(Sender<Vec<(u64, History)>>),
    /// Replace this worker's object bank with the given histories.
    Install(Vec<(u64, History)>, Sender<()>),
    /// Barrier: ack once everything queued before this is processed.
    Drain(Sender<()>),
}

/// The per-object server for `obj` within one worker's shard, created on
/// first touch with the shared store attached (tagged by object id) —
/// the sharded twin of [`KvServer::object_server`].
fn shard_server<'a>(
    objects: &'a mut BTreeMap<ObjectId, Server>,
    store: &Option<StoreHandle>,
    obj: ObjectId,
) -> &'a mut Server {
    objects.entry(obj).or_insert_with(|| match store {
        Some(s) => Server::with_tagged_store(s.clone(), obj.0),
        None => Server::new(),
    })
}

fn worker_loop(
    rx: Receiver<WorkerMsg>,
    me: NodeId,
    net: NetHandle<KvBatch>,
    store: Option<StoreHandle>,
) {
    let mut objects: BTreeMap<ObjectId, Server> = BTreeMap::new();
    // One reply accumulator for the worker's lifetime: the destination
    // map nodes survive each drain, so steady state allocates nothing
    // per batch beyond the items themselves.
    let mut replies = BatchAccumulator::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch { from, now, items } => {
                for item in items {
                    let server = shard_server(&mut objects, &store, item.object);
                    let mut inner: Context<StorageMsg> = Context::new(me, now, 0);
                    server.on_message(from, item.msg, &mut inner);
                    let (outbox, timers, _cancelled) = inner.into_outputs();
                    debug_assert!(timers.is_empty(), "benign servers never arm timers");
                    replies.absorb(item.object, item.lane, outbox);
                }
                for (to, batch) in replies.drain() {
                    net.send(me, to, batch);
                }
            }
            WorkerMsg::Gather(reply) => {
                let all = objects
                    .iter()
                    .map(|(o, s)| (o.0, s.history().clone()))
                    .collect();
                let _ = reply.send(all);
            }
            WorkerMsg::Install(histories, ack) => {
                objects.clear();
                for (obj, h) in histories {
                    shard_server(&mut objects, &store, ObjectId(obj)).install_history(h);
                }
                let _ = ack.send(());
            }
            WorkerMsg::Drain(ack) => {
                let _ = ack.send(());
            }
        }
    }
}

/// The shard workers of a pooled [`KvServer`]: each owns a disjoint
/// slice of the object space (`object.0 % workers`) and replies through
/// the runtime's [`NetHandle`]. Dropping the pool closes every inbox and
/// joins the threads, which releases the pool's network references so
/// the runtime can shut its interposer down.
pub(crate) struct WorkerPool {
    inboxes: Vec<Sender<WorkerMsg>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(
        workers: usize,
        me: NodeId,
        net: NetHandle<KvBatch>,
        store: Option<StoreHandle>,
    ) -> Self {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        let mut inboxes = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded();
            let net = net.clone();
            let store = store.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kv-worker-{}-{w}", me.0))
                .spawn(move || worker_loop(rx, me, net, store))
                .expect("spawn kv shard worker");
            inboxes.push(tx);
            handles.push(handle);
        }
        WorkerPool { inboxes, handles }
    }

    fn len(&self) -> usize {
        self.inboxes.len()
    }

    fn shard_of(&self, obj: ObjectId) -> usize {
        (obj.0 % self.inboxes.len() as u64) as usize
    }

    /// Routes one step's items to their shard workers (per-worker FIFO
    /// inboxes keep per-object order).
    fn dispatch(&self, from: NodeId, now: Time, items: Vec<KvItem>) {
        let mut shards: Vec<Vec<KvItem>> = vec![Vec::new(); self.inboxes.len()];
        for item in items {
            shards[self.shard_of(item.object)].push(item);
        }
        for (w, items) in shards.into_iter().enumerate() {
            if !items.is_empty() {
                self.inboxes[w]
                    .send(WorkerMsg::Batch { from, now, items })
                    .unwrap_or_else(|_| panic!("shard worker alive"));
            }
        }
    }

    /// Collects every worker's `(object, history)` pairs, sorted by
    /// object id (the order the unpooled bank iterates in).
    fn gather(&self) -> Vec<(u64, History)> {
        let replies: Vec<Receiver<Vec<(u64, History)>>> = self
            .inboxes
            .iter()
            .map(|tx| {
                let (rtx, rrx) = bounded(1);
                tx.send(WorkerMsg::Gather(rtx))
                    .unwrap_or_else(|_| panic!("shard worker alive"));
                rrx
            })
            .collect();
        let mut all: Vec<(u64, History)> = replies
            .into_iter()
            .flat_map(|rx| rx.recv().expect("shard worker alive"))
            .collect();
        all.sort_by_key(|(o, _)| *o);
        all
    }

    /// Replaces every worker's shard with its slice of `histories`,
    /// waiting until all workers acknowledge the swap.
    fn install(&self, histories: Vec<(u64, History)>) {
        let mut shards: Vec<Vec<(u64, History)>> = vec![Vec::new(); self.inboxes.len()];
        for (obj, h) in histories {
            shards[(obj % self.inboxes.len() as u64) as usize].push((obj, h));
        }
        let acks: Vec<Receiver<()>> = shards
            .into_iter()
            .enumerate()
            .map(|(w, shard)| {
                let (atx, arx) = bounded(1);
                self.inboxes[w]
                    .send(WorkerMsg::Install(shard, atx))
                    .unwrap_or_else(|_| panic!("shard worker alive"));
                arx
            })
            .collect();
        for a in acks {
            a.recv().expect("shard worker alive");
        }
    }

    /// Blocks until every worker has processed everything queued so far
    /// (per-worker FIFO makes the drain a true barrier).
    fn barrier(&self) {
        let acks: Vec<Receiver<()>> = self
            .inboxes
            .iter()
            .map(|tx| {
                let (atx, arx) = bounded(1);
                tx.send(WorkerMsg::Drain(atx))
                    .unwrap_or_else(|_| panic!("shard worker alive"));
                arx
            })
            .collect();
        for a in acks {
            a.recv().expect("shard worker alive");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the inboxes ends each worker loop; join so the workers'
        // NetHandle clones are gone before the runtime tears its network
        // down.
        self.inboxes.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl core::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WorkerPool({} workers)", self.inboxes.len())
    }
}

/// A benign multi-object storage server.
///
/// With a [`StoreHandle`] attached, every per-object [`Server`] logs its
/// write-ahead deltas to the *shared* store under its object id as tag,
/// and `save_state`/`restore_state` snapshot and rebuild the whole bank
/// at once — a single durable store per node, like a single disk.
///
/// With a [worker pool](Self::enable_worker_pool) enabled (threaded
/// runtime only), the object bank lives on the pool's shard threads
/// instead of `objects`, and `on_message` becomes a cheap routing step.
#[derive(Debug, Default)]
pub struct KvServer {
    objects: BTreeMap<ObjectId, Server>,
    store: Option<StoreHandle>,
    pool: Option<WorkerPool>,
    /// Reply accumulator reused across steps (empty between steps; its
    /// retained map nodes are a cache, not state).
    replies: BatchAccumulator,
}

impl Clone for KvServer {
    fn clone(&self) -> Self {
        // A worker pool is a per-instance thread resource; clones start
        // unpooled. (Nothing in the tree clones a live pooled server —
        // the bound exists for constructor-style call sites only.)
        KvServer {
            objects: self.objects.clone(),
            store: self.store.clone(),
            pool: None,
            replies: BatchAccumulator::new(),
        }
    }
}

impl KvServer {
    /// A fresh volatile server with no object state.
    pub fn new() -> Self {
        KvServer::default()
    }

    /// A durable server journaling every object to one shared `store`.
    pub fn with_store(store: StoreHandle) -> Self {
        KvServer {
            store: Some(store),
            ..KvServer::default()
        }
    }

    /// Shards this server's object state across `workers` dedicated
    /// threads replying through `net` as node `me`. Existing object state
    /// migrates to the shards; incoming batches are thereafter routed by
    /// `object.0 % workers`. Threaded-runtime only (the deterministic
    /// simulator has no [`NetHandle`]s).
    ///
    /// # Panics
    ///
    /// Panics if a pool is already enabled or `workers` is zero.
    pub fn enable_worker_pool(&mut self, workers: usize, me: NodeId, net: NetHandle<KvBatch>) {
        assert!(self.pool.is_none(), "worker pool already enabled");
        let pool = WorkerPool::spawn(workers, me, net, self.store.clone());
        if !self.objects.is_empty() {
            let existing = self
                .objects
                .iter()
                .map(|(o, s)| (o.0, s.history().clone()))
                .collect();
            pool.install(existing);
            self.objects.clear();
        }
        self.pool = Some(pool);
    }

    /// Number of shard workers (0 when unpooled).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::len)
    }

    /// Number of objects this server has state for.
    pub fn object_count(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.gather().len(),
            None => self.objects.len(),
        }
    }

    /// The history stored for `obj` (empty if never touched).
    pub fn history(&self, obj: ObjectId) -> History {
        if let Some(pool) = &self.pool {
            return pool
                .gather()
                .into_iter()
                .find(|(o, _)| *o == obj.0)
                .map(|(_, h)| h)
                .unwrap_or_default();
        }
        self.objects
            .get(&obj)
            .map(|s| s.history().clone())
            .unwrap_or_default()
    }

    /// The per-object server for `obj`, created on first touch with the
    /// shared store attached (tagged by object id).
    fn object_server(&mut self, obj: ObjectId) -> &mut Server {
        let store = self.store.clone();
        self.objects.entry(obj).or_insert_with(|| match store {
            Some(s) => Server::with_tagged_store(s, obj.0),
            None => Server::new(),
        })
    }
}

impl Automaton<KvBatch> for KvServer {
    fn state_digest(&self) -> u64 {
        if self.pool.is_some() {
            // The shards own the object state; fold a marker only. Pools
            // exist only on the threaded substrate, which never compares
            // digests across runs (that is the simulator's determinism
            // check).
            return rqs_sim::fnv1a(b"kv-server-pooled");
        }
        let mut acc = rqs_sim::fnv1a(b"kv-server");
        for (obj, server) in &self.objects {
            acc = rqs_sim::fnv1a_fold(acc, obj.0);
            acc = rqs_sim::fnv1a_fold(acc, server.state_digest());
        }
        acc
    }

    fn on_message(&mut self, from: NodeId, batch: KvBatch, ctx: &mut Context<KvBatch>) {
        // Pooled: route each item to its object's shard worker and
        // return — replies leave through the pool's NetHandle instead of
        // this step's context, so the node thread is back to its inbox
        // in O(batch) routing time.
        if let Some(pool) = &self.pool {
            pool.dispatch(from, ctx.now(), batch.0);
            return;
        }
        // Per-destination reply buffer: everything this step produces for
        // one destination leaves as a single batch. The accumulator is a
        // field so its map nodes persist across steps.
        for item in batch.0 {
            let server = self.object_server(item.object);
            let mut inner: Context<StorageMsg> = Context::new(ctx.me(), ctx.now(), 0);
            server.on_message(from, item.msg, &mut inner);
            let (outbox, timers, _cancelled) = inner.into_outputs();
            debug_assert!(timers.is_empty(), "benign servers never arm timers");
            self.replies.absorb(item.object, item.lane, outbox);
        }
        self.replies.flush(ctx);
    }

    fn save_state(&mut self) {
        // One snapshot covering every object: the inner servers'
        // `save_state` is never used, because each would install a
        // single-object snapshot into the shared store, clobbering the
        // others.
        let Some(store) = &self.store else { return };
        if let Some(pool) = &self.pool {
            // Barrier first so every WAL append of already-routed batches
            // precedes the snapshot, then gather the shards' banks.
            pool.barrier();
            let gathered = pool.gather();
            let blob = wal::encode_histories(gathered.iter().map(|(obj, h)| (*obj, h)));
            store.install_snapshot(&blob);
            return;
        }
        let blob = wal::encode_histories(self.objects.iter().map(|(obj, s)| (obj.0, s.history())));
        store.install_snapshot(&blob);
    }

    fn restore_state(&mut self) -> usize {
        self.objects.clear();
        let Some(store) = self.store.clone() else {
            if let Some(pool) = &self.pool {
                pool.install(Vec::new());
            }
            return 0;
        };
        // Crash the store once, load it once, and demultiplex the shared
        // log in a single pass — rescanning it per object would make
        // recovery O(objects × log), long enough under thousands of
        // objects to stall the node past its clients' op timeouts.
        if let Some(pool) = &self.pool {
            // Quiesce the shards before crashing the store: a worker
            // appending after the crash point would corrupt the reload.
            // Batches routed after this restore queue behind the Install
            // in each worker's FIFO inbox, so they see recovered state.
            pool.barrier();
            store.crash();
            let rec = store.load();
            let (histories, replayed) = wal::restore_histories(&rec);
            pool.install(histories);
            return replayed;
        }
        store.crash();
        let rec = store.load();
        let (histories, replayed) = wal::restore_histories(&rec);
        for (obj, h) in histories {
            self.object_server(ObjectId(obj)).install_history(h);
        }
        replayed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Byzantine behaviour of a [`KvByzantineServer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ByzantineMode {
    /// Never replies (crash-faulty from the clients' viewpoint).
    Mute,
    /// Acknowledges every write without storing it and reports the empty
    /// history to every read — the multi-object analogue of
    /// [`ForgedServer::initial_state`](rqs_storage::byzantine::ForgedServer).
    Forge,
}

/// A Byzantine multi-object server (for fault injection on both
/// substrates; unlike the scripted single-object forgers it is `Send`).
#[derive(Clone, Debug)]
pub struct KvByzantineServer {
    mode: ByzantineMode,
}

impl KvByzantineServer {
    /// A server behaving per `mode` on every object.
    pub fn new(mode: ByzantineMode) -> Self {
        KvByzantineServer { mode }
    }
}

impl Automaton<KvBatch> for KvByzantineServer {
    fn on_message(&mut self, from: NodeId, batch: KvBatch, ctx: &mut Context<KvBatch>) {
        if self.mode == ByzantineMode::Mute {
            return;
        }
        let mut items = Vec::new();
        for item in batch.0 {
            match item.msg {
                StorageMsg::Wr { ts, rnd, .. } => {
                    // Ack without storing: the write is forgotten.
                    items.push(KvItem {
                        object: item.object,
                        lane: item.lane,
                        msg: StorageMsg::WrAck { ts, rnd },
                    });
                }
                StorageMsg::Rd { read_no, rnd } => {
                    // Forge the initial (empty) history for every object.
                    items.push(KvItem {
                        object: item.object,
                        lane: item.lane,
                        msg: StorageMsg::RdAck {
                            read_no,
                            rnd,
                            history: Arc::new(History::new()),
                        },
                    });
                }
                StorageMsg::WrAck { .. } | StorageMsg::RdAck { .. } => {}
            }
        }
        if !items.is_empty() {
            ctx.send(from, KvBatch(items));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Lane;
    use rqs_sim::Time;
    use rqs_storage::{TsVal, Value};
    use std::collections::BTreeSet;

    fn test_ctx() -> Context<KvBatch> {
        Context::new(NodeId(0), Time::ZERO, 0)
    }

    fn wr(object: u64, lane: Lane, ts: u64, v: u64) -> KvItem {
        KvItem {
            object: ObjectId(object),
            lane,
            msg: StorageMsg::Wr {
                ts,
                val: Value::from(v),
                sets: BTreeSet::new(),
                rnd: 1,
            },
        }
    }

    #[test]
    fn batch_of_writes_acked_in_one_envelope() {
        let mut s = KvServer::new();
        let mut c = test_ctx();
        let batch = KvBatch(vec![
            wr(0, Lane::Writer, 1, 10),
            wr(1, Lane::Writer, 1, 11),
            wr(2, Lane::Writer, 1, 12),
        ]);
        s.on_message(NodeId(9), batch, &mut c);
        assert_eq!(s.object_count(), 3);
        assert_eq!(c.sent().len(), 1, "replies coalesce per destination");
        let (to, reply) = &c.sent()[0];
        assert_eq!(*to, NodeId(9));
        assert_eq!(reply.len(), 3);
        assert!(s
            .history(ObjectId(1))
            .stores(&TsVal::new(1, Value::from(11u64)), 1));
        assert!(s.history(ObjectId(7)).is_empty());
    }

    #[test]
    fn per_object_state_is_isolated() {
        let mut s = KvServer::new();
        let mut c = test_ctx();
        s.on_message(NodeId(3), KvBatch(vec![wr(4, Lane::Writer, 5, 50)]), &mut c);
        assert!(s
            .history(ObjectId(4))
            .stores(&TsVal::new(5, Value::from(50u64)), 1));
        assert!(s.history(ObjectId(5)).is_empty());
    }

    #[test]
    fn lane_is_echoed_in_replies() {
        let mut s = KvServer::new();
        let mut c = test_ctx();
        s.on_message(NodeId(2), KvBatch(vec![wr(0, Lane::Reader, 1, 1)]), &mut c);
        assert_eq!(c.sent()[0].1 .0[0].lane, Lane::Reader);
    }

    #[test]
    fn amnesia_restore_rebuilds_every_object_from_one_store() {
        let store = StoreHandle::mem();
        let mut s = KvServer::with_store(store.clone());
        let mut c = test_ctx();
        s.on_message(
            NodeId(9),
            KvBatch(vec![wr(0, Lane::Writer, 1, 10), wr(7, Lane::Writer, 2, 70)]),
            &mut c,
        );
        s.save_state(); // snapshot both objects
        let mut c2 = test_ctx();
        s.on_message(
            NodeId(9),
            KvBatch(vec![wr(3, Lane::Writer, 1, 30)]),
            &mut c2,
        );
        let before: Vec<_> = [0u64, 3, 7]
            .iter()
            .map(|&o| s.history(ObjectId(o)))
            .collect();

        // Amnesia: fresh automaton over the same store.
        let mut recovered = KvServer::with_store(store.clone());
        let replayed = recovered.restore_state();
        assert_eq!(replayed, 1, "only object 3's delta postdates the snapshot");
        assert_eq!(recovered.object_count(), 3);
        for (i, &o) in [0u64, 3, 7].iter().enumerate() {
            assert_eq!(recovered.history(ObjectId(o)), before[i], "object {o}");
        }
        assert_eq!(store.stats().crashes, 1, "shared store crashed once");
    }

    #[test]
    fn mute_byzantine_says_nothing() {
        let mut s = KvByzantineServer::new(ByzantineMode::Mute);
        let mut c = test_ctx();
        s.on_message(NodeId(1), KvBatch(vec![wr(0, Lane::Writer, 1, 1)]), &mut c);
        assert!(c.sent().is_empty());
    }

    #[test]
    fn forging_byzantine_acks_without_storing() {
        let mut s = KvByzantineServer::new(ByzantineMode::Forge);
        let mut c = test_ctx();
        let batch = KvBatch(vec![
            wr(0, Lane::Writer, 1, 1),
            KvItem {
                object: ObjectId(0),
                lane: Lane::Reader,
                msg: StorageMsg::Rd { read_no: 1, rnd: 1 },
            },
        ]);
        s.on_message(NodeId(1), batch, &mut c);
        let reply = &c.sent()[0].1;
        assert_eq!(reply.len(), 2);
        match &reply.0[1].msg {
            StorageMsg::RdAck { history, .. } => assert!(history.is_empty()),
            other => panic!("expected RdAck, got {other:?}"),
        }
    }
}
