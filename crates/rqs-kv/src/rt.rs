//! Threaded deployment of the KV service.
//!
//! The exact same [`KvServer`]/[`KvClient`] automata as the simulator,
//! running node-per-thread over crossbeam channels via [`rqs_runtime`]:
//! real concurrency, real wall-clock latency, same batching discipline.

use crate::client::{KvClient, KvOp, KvOutcome};
use crate::messages::KvBatch;
use crate::metrics::KvRunStats;
use crate::object::ShardMap;
use crate::server::KvServer;
use crate::workload::{per_client, take_wave, WorkloadOp};
use rqs_core::Rqs;
use rqs_runtime::{Runtime, RuntimeBuilder, DEFAULT_TICK};
use rqs_sim::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A KV deployment over real threads and channels.
pub struct RtKv {
    rt: Runtime<KvBatch>,
    shard: ShardMap,
    clients: Vec<NodeId>,
    op_timeout: Duration,
}

impl RtKv {
    /// Deploys one server thread per universe member and `clients` client
    /// threads owning `objects` objects round-robin, with the default
    /// tick.
    pub fn new(rqs: Rqs, objects: usize, clients: usize) -> Self {
        Self::with_tick(rqs, objects, clients, DEFAULT_TICK)
    }

    /// Deploys with an explicit wall-clock tick length.
    pub fn with_tick(rqs: Rqs, objects: usize, clients: usize, tick: Duration) -> Self {
        let rqs = Arc::new(rqs);
        let shard = ShardMap::new(objects, clients);
        let n = rqs.universe_size();
        let server_ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut builder = RuntimeBuilder::new().tick(tick);
        for _ in 0..n {
            builder = builder.node(Box::new(KvServer::new()));
        }
        for c in 0..clients {
            builder = builder.node(Box::new(KvClient::new(
                rqs.clone(),
                server_ids.clone(),
                shard.owned_by(c),
            )));
        }
        RtKv {
            rt: builder.start(),
            shard,
            clients: (n..n + clients).map(NodeId).collect(),
            op_timeout: Duration::from_secs(60),
        }
    }

    /// The shard map in use.
    pub fn shard(&self) -> &ShardMap {
        &self.shard
    }

    /// Drives a workload to completion in waves of at most `batch`
    /// operations per client (same wave discipline as the simulator) and
    /// returns run metrics; `duration_units` is wall-clock microseconds.
    ///
    /// # Panics
    ///
    /// Panics if a wave does not complete within the operation timeout or
    /// if `batch == 0`.
    pub fn run_workload(&self, ops: &[WorkloadOp], batch: usize) -> KvRunStats {
        assert!(batch > 0, "batch size must be positive");
        let mut queues: Vec<VecDeque<KvOp>> = per_client(self.clients.len(), ops)
            .into_iter()
            .map(VecDeque::from)
            .collect();
        let before_counts: Vec<usize> = self
            .clients
            .iter()
            .map(|&c| self.rt.inspect::<KvClient, usize>(c, |k| k.outcomes().len()))
            .collect();
        let started = Instant::now();

        loop {
            let mut launched = false;
            for (ci, queue) in queues.iter_mut().enumerate() {
                let wave = take_wave(queue, batch);
                if !wave.is_empty() {
                    launched = true;
                    self.rt
                        .invoke::<KvClient>(self.clients[ci], move |c, ctx| c.start_ops(wave, ctx));
                }
            }
            if !launched {
                break;
            }
            for &c in &self.clients {
                let ok = self.rt.wait_for::<KvClient>(
                    c,
                    |k: &KvClient| k.in_flight() == 0,
                    self.op_timeout,
                );
                assert!(ok, "KV wave did not complete on the threaded runtime");
            }
        }

        let wall = started.elapsed();
        let mut stats = KvRunStats::default();
        for (ci, &node) in self.clients.iter().enumerate() {
            let skip = before_counts[ci];
            let outs = self
                .rt
                .inspect::<KvClient, Vec<KvOutcome>>(node, move |k| {
                    k.outcomes()[skip..].to_vec()
                });
            for out in &outs {
                stats.record_outcome(out);
            }
        }
        stats.duration_units = (wall.as_micros() as u64).max(1);
        stats
    }

    /// Stops all threads.
    pub fn shutdown(&mut self) {
        self.rt.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use rqs_core::threshold::ThresholdConfig;

    #[test]
    fn threaded_kv_roundtrip() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 8, 2, Duration::from_millis(1));
        let cfg = WorkloadConfig::mixed(8, 2, 24, 17);
        let stats = kv.run_workload(&generate(&cfg), 4);
        assert_eq!(stats.ops, 24);
        assert!(stats.throughput() > 0.0);
        kv.shutdown();
    }

    #[test]
    fn threaded_kv_byzantine_universe() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 4, 2, Duration::from_millis(1));
        let cfg = WorkloadConfig::mixed(4, 2, 12, 23);
        let stats = kv.run_workload(&generate(&cfg), 2);
        assert_eq!(stats.ops, 12);
        kv.shutdown();
    }
}
