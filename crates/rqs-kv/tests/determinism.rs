//! Two KV sim runs with the same seed must produce byte-identical
//! operation traces — the property every experiment and every replayed
//! failure depends on.

use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, ByzantineMode, KvSim, WorkloadConfig};

fn run_trace(seed: u64, batch: usize, byzantine: bool) -> Vec<String> {
    run_trace_depth(seed, batch, byzantine, 1)
}

fn run_trace_depth(seed: u64, batch: usize, byzantine: bool, depth: usize) -> Vec<String> {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut sim = KvSim::new(rqs, 16, 4);
    if byzantine {
        sim.make_byzantine(1, ByzantineMode::Forge);
    }
    if depth > 1 {
        sim.set_pipeline(depth);
    }
    let cfg = WorkloadConfig::mixed(16, 4, 120, seed);
    sim.run_workload(&workload::generate(&cfg), batch);
    sim.check_atomicity().unwrap();
    sim.op_trace()
}

#[test]
fn same_seed_byte_identical_traces() {
    let a = run_trace(42, 4, false);
    let b = run_trace(42, 4, false);
    assert!(!a.is_empty());
    assert_eq!(
        a.join("\n"),
        b.join("\n"),
        "traces must match byte-for-byte"
    );
}

#[test]
fn same_seed_byte_identical_traces_with_byzantine_server() {
    let a = run_trace(7, 4, true);
    let b = run_trace(7, 4, true);
    assert_eq!(a.join("\n"), b.join("\n"));
}

#[test]
fn different_seeds_diverge() {
    let a = run_trace(1, 4, false);
    let b = run_trace(2, 4, false);
    assert_ne!(a.join("\n"), b.join("\n"));
}

#[test]
fn depth_one_reproduces_pre_pipelining_traces_exactly() {
    // The golden file was captured from the client before pipelining
    // existed (same seed, batch, deployment shape). Depth 1 must keep
    // reproducing it byte for byte: the pipelined client with an empty
    // backlog IS the legacy client.
    let golden = include_str!("golden_depth1_seed42.txt");
    let trace = run_trace(42, 4, false).join("\n");
    assert_eq!(
        trace,
        golden.trim_end(),
        "depth-1 trace drifted from the pre-pipelining golden"
    );
}

#[test]
fn same_seed_byte_identical_traces_at_any_fixed_depth() {
    for depth in [2, 4, 8] {
        let a = run_trace_depth(33, 4, false, depth);
        let b = run_trace_depth(33, 4, false, depth);
        assert!(!a.is_empty());
        assert_eq!(
            a.join("\n"),
            b.join("\n"),
            "depth {depth} must stay deterministic"
        );
    }
}

#[test]
fn batch_size_changes_schedule_but_not_results() {
    // Different batch sizes reorder the waves, but both runs must stay
    // atomic and complete the same operation multiset.
    let a = run_trace(5, 1, false);
    let b = run_trace(5, 8, false);
    assert_eq!(a.len(), b.len());
}
