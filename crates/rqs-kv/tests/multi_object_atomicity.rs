//! Property tests: randomized multi-object workloads — across
//! configurations, mixes, skews, batch sizes and Byzantine injection —
//! always pass the per-object atomicity checker.

use proptest::prelude::*;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, ByzantineMode, KvSim, WorkloadConfig};

fn run(objects: usize, clients: usize, cfg: WorkloadConfig, batch: usize, byz: Option<usize>) {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut sim = KvSim::new(rqs, objects, clients);
    if let Some(idx) = byz {
        sim.make_byzantine(idx, ByzantineMode::Forge);
    }
    let ops = workload::generate(&cfg);
    let stats = sim.run_workload(&ops, batch);
    assert_eq!(stats.ops, cfg.ops, "every operation must complete");
    sim.check_atomicity()
        .unwrap_or_else(|v| panic!("atomicity violated: {v}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn randomized_histories_per_object_atomic(
        seed in 0u64..10_000,
        read_percent in 0u8..=100,
        batch in 1usize..=8,
    ) {
        let cfg = WorkloadConfig {
            objects: 8,
            clients: 2,
            ops: 48,
            read_percent,
            skew: 0.3,
            seed,
        };
        run(8, 2, cfg, batch, None);
    }

    #[test]
    fn randomized_histories_atomic_under_byzantine_server(
        seed in 0u64..10_000,
        byz_idx in 0usize..4,
        batch in 1usize..=6,
    ) {
        let cfg = WorkloadConfig {
            objects: 16,
            clients: 4,
            ops: 64,
            read_percent: 50,
            skew: 0.5,
            seed,
        };
        run(16, 4, cfg, batch, Some(byz_idx));
    }

    #[test]
    fn heavy_skew_contention_stays_atomic(
        seed in 0u64..10_000,
        skew in 0u8..=9,
    ) {
        // High skew concentrates reads and writes on few objects,
        // maximizing read/write races across clients.
        let cfg = WorkloadConfig {
            objects: 8,
            clients: 4,
            ops: 48,
            read_percent: 60,
            skew: f64::from(skew) / 10.0,
            seed,
        };
        run(8, 4, cfg, 4, None);
    }
}
