//! Property tests for the pipelined hot path: randomized workloads at
//! pipeline depths 1–8 — under flaky (lossy) links and with one forging
//! Byzantine server — complete exactly once and stay atomic on both
//! substrates (deterministic simulator and threaded runtime).
//!
//! The depth-1 ⇒ byte-identical-legacy-trace pin lives in the golden
//! determinism tests; here the property is the checker's verdict across
//! the randomized (depth × faults × mix) matrix.

use proptest::prelude::*;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, ByzantineMode, KvSim, RetryPolicy, RtKv, WorkloadConfig};
use rqs_sim::Scenario;
use std::time::Duration;

/// Lossy links toward one server: each `every`-th message touching it
/// (either direction) is dropped for the whole run. Quorums avoiding
/// the flaky server keep closing; rounds that did include it are nudged
/// through by the per-slot retry watchdogs.
fn flaky(server: usize, every: u64) -> Scenario {
    Scenario::named("pipelined-flaky").lossy_towards(vec![server], every)
}

fn sim_run(depth: usize, cfg: WorkloadConfig, byz: Option<usize>, drop_every: Option<u64>) {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let n = rqs.universe_size();
    let scenario = match drop_every {
        // Keep the flaky server distinct from the forger so both fault
        // kinds are live at once.
        Some(every) => flaky(byz.map_or(0, |b| (b + 1) % n), every),
        None => Scenario::default(),
    };
    let mut sim = KvSim::with_scenario(rqs, cfg.objects, cfg.clients, scenario);
    sim.set_pipeline(depth);
    if let Some(idx) = byz {
        sim.make_byzantine(idx, ByzantineMode::Forge);
    }
    if drop_every.is_some() {
        // Dropped acks stall rounds forever without nudges (the protocol
        // never resends); sim ticks are cheap, so retry aggressively.
        sim.set_retry_policy(RetryPolicy {
            max_retries: 128,
            base_backoff: 4,
            max_backoff: 32,
            deadline: 1 << 20,
        });
    }
    let ops = workload::generate(&cfg);
    let stats = sim.run_workload(&ops, 4);
    assert_eq!(stats.ops, cfg.ops, "every operation must complete");
    sim.check_atomicity()
        .unwrap_or_else(|v| panic!("atomicity violated at depth {depth}: {v}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Depth × mix randomization on fault-free links.
    #[test]
    fn pipelined_depths_stay_atomic(
        seed in 0u64..10_000,
        depth in 1usize..=8,
        read_percent in 0u8..=100,
    ) {
        let cfg = WorkloadConfig {
            objects: 8,
            clients: 2,
            ops: 48,
            read_percent,
            skew: 0.4,
            seed,
        };
        sim_run(depth, cfg, None, None);
    }

    /// Depth × flaky links × one forging Byzantine server: retries and
    /// the quorum predicates absorb both fault kinds at any depth.
    #[test]
    fn pipelined_flaky_byzantine_stays_atomic(
        seed in 0u64..10_000,
        depth in 1usize..=8,
        byz_idx in 0usize..4,
        drop_every in 2u64..=5,
    ) {
        let cfg = WorkloadConfig {
            objects: 8,
            clients: 2,
            ops: 40,
            read_percent: 50,
            skew: 0.5,
            seed,
        };
        sim_run(depth, cfg, Some(byz_idx), Some(drop_every));
    }
}

proptest! {
    // The threaded runtime spins up real node/worker threads per case;
    // keep the case count low and the workloads small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The same property on the threaded substrate: pipelined depths with
    /// a sharded worker pool and one forging Byzantine server.
    #[test]
    fn threaded_pipelined_byzantine_stays_atomic(
        seed in 0u64..10_000,
        depth in 2usize..=8,
        byz_idx in 0usize..4,
    ) {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 8, 2, Duration::from_micros(50));
        kv.make_byzantine(byz_idx, ByzantineMode::Forge);
        kv.enable_worker_pool(2);
        kv.set_pipeline(depth);
        kv.set_retry_policy(RetryPolicy {
            max_retries: 8,
            base_backoff: 1000,
            max_backoff: 16_000,
            deadline: 1 << 22,
        });
        let cfg = WorkloadConfig {
            objects: 8,
            clients: 2,
            ops: 32,
            read_percent: 50,
            skew: 0.4,
            seed,
        };
        let stats = kv.run_workload(&workload::generate(&cfg), 4);
        kv.check_atomicity()
            .unwrap_or_else(|v| panic!("atomicity violated at depth {depth}: {v}"));
        assert_eq!(stats.ops, cfg.ops, "every operation must complete");
        kv.shutdown();
    }
}
