//! # Threaded runtime for RQS protocols
//!
//! Runs the exact same automatons as the deterministic simulator
//! ([`rqs_sim`]) on real OS threads connected by crossbeam channels, with
//! protocol timers mapped to wall-clock durations. This is the deployment
//! behind the wall-clock benchmarks (experiment E11): identical protocol
//! logic, real concurrency and latency.
//!
//! [`Runtime`] implements [`rqs_sim::Substrate`], so the substrate-generic
//! deployment drivers (`StorageDeployment`, `ConsensusDeployment`,
//! `KvDeployment`) run here unchanged, including declarative
//! [`rqs_sim::Scenario`] fault injection (compiled to an interposed
//! message-filter thread plus a fault scheduler).
//!
//! - [`runtime`] — the generic node-per-thread executor;
//! - [`storage`] — [`RtStorage`], a threaded atomic-storage deployment;
//! - [`consensus`] — [`RtConsensus`], a threaded consensus deployment;
//! - [`sidecar`] — [`CheckerSidecar`], a thread streaming harvested
//!   operations through per-object atomicity checkers so soak-length
//!   runs are validated concurrently with the workload.
//!
//! ```no_run
//! use rqs_core::threshold::ThresholdConfig;
//! use rqs_runtime::RtStorage;
//!
//! let rqs = ThresholdConfig::crash_fast(5, 1).build()?;
//! let mut storage = RtStorage::new(rqs, 1);
//! let (w, wall) = storage.write(7u64.into());
//! println!("write took {} round(s), {wall:?} wall-clock", w.rounds);
//! storage.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod consensus;
pub mod runtime;
pub mod sidecar;
pub mod storage;

pub use consensus::RtConsensus;
pub use runtime::{NetHandle, Runtime, RuntimeBuilder, DEFAULT_TICK};
pub use sidecar::{CheckerSidecar, SidecarReport};
pub use storage::RtStorage;
