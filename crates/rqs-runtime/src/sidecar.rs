//! Checker sidecar: streaming atomicity validation off the driver thread.
//!
//! [`CheckerSidecar`] owns a thread running one
//! [`AtomicityChecker`](rqs_storage::AtomicityChecker) per object.
//! Drivers on the threaded runtime hand each harvested
//! [`OpRecord`](rqs_storage::OpRecord) to [`CheckerSidecar::observe`]
//! (a channel send) and keep going; the sidecar validates concurrently
//! and retires provably-ordered prefixes whenever the driver signals a
//! quiescent point ([`CheckerSidecar::retire_settled`]), so soak-length
//! runs are checked with bounded memory without slowing the workload.
//! [`CheckerSidecar::finish`] joins the thread and returns the verdict
//! plus aggregated checker counters.
//!
//! # Arrival order
//!
//! The sidecar assumes **nothing** about the order records arrive in.
//! With a sharded `KvServer` worker pool and pipelined clients, the
//! driver harvests completions lane by lane while workers finish
//! server-side processing in shard order — so records reach
//! [`CheckerSidecar::observe`] interleaved across objects and, within
//! one object, not necessarily in completion order. That is fine:
//! verdicts derive from each record's own `invoked_at`/`completed_at`
//! interval, never from arrival position (the per-object
//! [`AtomicityChecker`] accepts records in any order by contract). The
//! only ordering the driver must respect is calling
//! [`CheckerSidecar::retire_settled`] at true quiescent points — after
//! the records of the settled prefix were handed over.

use rqs_storage::{AtomicityChecker, AtomicityViolation, CheckerStats, OpRecord};
use std::collections::BTreeMap;
use std::thread::JoinHandle;

enum SidecarMsg {
    Op(u64, OpRecord),
    RetireSettled,
}

/// Final report of a sidecar run.
#[derive(Clone, Debug)]
pub struct SidecarReport {
    /// `Err((object, violation))` for the first violating object.
    pub verdict: Result<(), (u64, AtomicityViolation)>,
    /// Counters aggregated across all per-object checkers.
    pub stats: CheckerStats,
    /// Number of distinct objects observed.
    pub objects: usize,
}

/// A thread running per-object streaming atomicity checkers; see the
/// module docs.
pub struct CheckerSidecar {
    tx: crossbeam_channel::Sender<SidecarMsg>,
    handle: JoinHandle<SidecarReport>,
}

impl CheckerSidecar {
    /// Spawns the checker thread.
    pub fn spawn() -> Self {
        let (tx, rx) = crossbeam_channel::unbounded::<SidecarMsg>();
        let handle = std::thread::Builder::new()
            .name("rqs-checker-sidecar".into())
            .spawn(move || {
                let mut checkers: BTreeMap<u64, AtomicityChecker> = BTreeMap::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        SidecarMsg::Op(object, rec) => {
                            checkers.entry(object).or_default().observe(&rec);
                        }
                        SidecarMsg::RetireSettled => {
                            for c in checkers.values_mut() {
                                c.retire_settled();
                            }
                        }
                    }
                }
                let mut verdict = Ok(());
                let mut stats = CheckerStats::default();
                let objects = checkers.len();
                for (object, c) in checkers.iter_mut() {
                    if verdict.is_ok() {
                        if let Err(v) = c.finish() {
                            verdict = Err((*object, v));
                        }
                    }
                    stats.merge(&c.stats());
                }
                SidecarReport {
                    verdict,
                    stats,
                    objects,
                }
            })
            .expect("spawn checker sidecar");
        CheckerSidecar { tx, handle }
    }

    /// Hands one completed operation of `object` to the checker thread.
    pub fn observe(&self, object: u64, rec: OpRecord) {
        let _ = self.tx.send(SidecarMsg::Op(object, rec));
    }

    /// Signals a quiescent point: nothing is in flight, so each checker
    /// may retire everything that completed before its newest completion.
    pub fn retire_settled(&self) {
        let _ = self.tx.send(SidecarMsg::RetireSettled);
    }

    /// Declares the run complete: joins the thread and returns verdict
    /// and counters.
    pub fn finish(self) -> SidecarReport {
        drop(self.tx);
        self.handle.join().expect("checker sidecar panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_sim::Time;
    use rqs_storage::{OpKind, TsVal, Value};

    fn op(kind: OpKind, ts: u64, v: u64, inv: u64, resp: u64) -> OpRecord {
        OpRecord {
            kind,
            client: 0,
            pair: if ts == 0 {
                TsVal::initial()
            } else {
                TsVal::new(ts, Value::from(v))
            },
            invoked_at: Time(inv),
            completed_at: Time(resp),
        }
    }

    #[test]
    fn clean_history_passes_with_retirement() {
        let sidecar = CheckerSidecar::spawn();
        for i in 1..=100u64 {
            let t = i * 10;
            sidecar.observe(7, op(OpKind::Write, i, i, t, t + 4));
            sidecar.observe(7, op(OpKind::Read, i, i, t + 5, t + 8));
            sidecar.retire_settled();
        }
        let report = sidecar.finish();
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
        assert_eq!(report.objects, 1);
        assert_eq!(report.stats.ops_checked, 200);
        assert!(report.stats.retired_ops > 150, "{:?}", report.stats);
        assert!(
            report.stats.max_frontier < 20,
            "frontier must stay bounded: {:?}",
            report.stats
        );
    }

    /// A wave of records for two objects, in true completion order.
    /// `i` is the wave number; timestamps/values advance with it.
    fn wave(i: u64) -> Vec<(u64, OpRecord)> {
        let t = i * 10;
        vec![
            (1, op(OpKind::Write, i, i, t, t + 4)),
            (1, op(OpKind::Read, i, i, t + 5, t + 8)),
            (2, op(OpKind::Write, i, i + 100, t, t + 4)),
            (2, op(OpKind::Read, i, i + 100, t + 5, t + 8)),
        ]
    }

    /// The sharded worker pool hands completions to the harvest loop in
    /// shard order, not completion order, so the sidecar sees each
    /// wave's records permuted and interleaved across objects. Feeding
    /// every wave reversed (reads before the writes they read from,
    /// objects interleaved) must reach the same clean verdict as the
    /// in-order feed of `clean_history_passes_with_retirement`.
    #[test]
    fn reordered_feed_reaches_the_in_order_verdict() {
        let sidecar = CheckerSidecar::spawn();
        for i in 1..=50u64 {
            for (object, rec) in wave(i).into_iter().rev() {
                sidecar.observe(object, rec);
            }
            // Wave boundaries are quiescent points regardless of the
            // arrival order inside the wave.
            sidecar.retire_settled();
        }
        let report = sidecar.finish();
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
        assert_eq!(report.objects, 2);
        assert_eq!(report.stats.ops_checked, 200);
        assert!(
            report.stats.max_frontier < 20,
            "retirement must keep working under reorder: {:?}",
            report.stats
        );
    }

    /// Reordering must not mask a genuine violation either: a stale read
    /// buried mid-wave is still caught when the wave arrives reversed.
    #[test]
    fn reordered_feed_still_catches_a_stale_read() {
        let sidecar = CheckerSidecar::spawn();
        for (object, rec) in wave(1).into_iter().rev() {
            sidecar.observe(object, rec);
        }
        let mut bad = wave(2);
        // Object 1's wave-2 read returns the wave-1 value after the
        // wave-2 write completed: a stale read.
        bad[1].1 = op(OpKind::Read, 1, 1, 25, 28);
        for (object, rec) in bad.into_iter().rev() {
            sidecar.observe(object, rec);
        }
        let report = sidecar.finish();
        let (object, v) = report.verdict.unwrap_err();
        assert_eq!(object, 1);
        assert!(matches!(v, AtomicityViolation::StaleRead { .. }), "{v}");
    }

    #[test]
    fn violation_is_attributed_to_its_object() {
        let sidecar = CheckerSidecar::spawn();
        sidecar.observe(1, op(OpKind::Write, 1, 10, 0, 5));
        sidecar.observe(1, op(OpKind::Read, 1, 10, 6, 8));
        sidecar.observe(2, op(OpKind::Write, 1, 10, 0, 5));
        sidecar.observe(2, op(OpKind::Read, 0, 0, 6, 8)); // stale on object 2
        let report = sidecar.finish();
        let (object, v) = report.verdict.unwrap_err();
        assert_eq!(object, 2);
        assert!(matches!(v, AtomicityViolation::StaleRead { .. }), "{v}");
    }
}
