//! Threaded deployment of the RQS atomic storage.

use crate::runtime::{Runtime, RuntimeBuilder, DEFAULT_TICK};
use rqs_core::Rqs;
use rqs_sim::NodeId;
use rqs_storage::reader::Reader;
use rqs_storage::writer::Writer;
use rqs_storage::{ReadOutcome, Server, StorageMsg, Value, WriteOutcome};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A storage deployment over real threads and channels.
///
/// Same automatons as the simulator harness, real wall-clock latency.
pub struct RtStorage {
    rt: Runtime<StorageMsg>,
    writer: NodeId,
    readers: Vec<NodeId>,
    op_timeout: Duration,
}

impl RtStorage {
    /// Deploys servers, one writer and `readers` reader clients over the
    /// given refined quorum system, with the default tick.
    pub fn new(rqs: Rqs, readers: usize) -> Self {
        Self::with_tick(rqs, readers, DEFAULT_TICK)
    }

    /// Deploys with an explicit tick length.
    pub fn with_tick(rqs: Rqs, readers: usize, tick: Duration) -> Self {
        let rqs = Arc::new(rqs);
        let n = rqs.universe_size();
        let server_ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut builder = RuntimeBuilder::new().tick(tick);
        for _ in 0..n {
            builder = builder.node(Box::new(Server::new()));
        }
        builder = builder.node(Box::new(Writer::new(rqs.clone(), server_ids.clone())));
        for _ in 0..readers {
            builder = builder.node(Box::new(Reader::new(rqs.clone(), server_ids.clone())));
        }
        let rt = builder.start();
        RtStorage {
            rt,
            writer: NodeId(n),
            readers: (n + 1..n + 1 + readers).map(NodeId).collect(),
            op_timeout: Duration::from_secs(30),
        }
    }

    /// Performs a complete write and returns `(outcome, wall_latency)`.
    ///
    /// # Panics
    ///
    /// Panics if the write does not complete within 30 s.
    pub fn write(&self, v: Value) -> (WriteOutcome, Duration) {
        let before = self
            .rt
            .inspect::<Writer, usize>(self.writer, |w| w.outcomes().len());
        let start = Instant::now();
        self.rt
            .invoke::<Writer>(self.writer, move |w, ctx| w.start_write(v, ctx));
        let target = before + 1;
        let ok = self.rt.wait_for::<Writer>(
            self.writer,
            move |w| w.outcomes().len() >= target,
            self.op_timeout,
        );
        assert!(ok, "write did not complete");
        let wall = start.elapsed();
        let out =
            self.rt
                .inspect::<Writer, WriteOutcome>(self.writer, move |w| {
                    w.outcomes()[target - 1].clone()
                });
        (out, wall)
    }

    /// Performs a complete read by reader `i`; returns
    /// `(outcome, wall_latency)`.
    ///
    /// # Panics
    ///
    /// Panics if the read does not complete within 30 s.
    pub fn read(&self, i: usize) -> (ReadOutcome, Duration) {
        let node = self.readers[i];
        let before = self
            .rt
            .inspect::<Reader, usize>(node, |r| r.outcomes().len());
        let start = Instant::now();
        self.rt.invoke::<Reader>(node, |r, ctx| r.start_read(ctx));
        let target = before + 1;
        let ok = self.rt.wait_for::<Reader>(
            node,
            move |r| r.outcomes().len() >= target,
            self.op_timeout,
        );
        assert!(ok, "read did not complete");
        let wall = start.elapsed();
        let out = self
            .rt
            .inspect::<Reader, ReadOutcome>(node, move |r| r.outcomes()[target - 1].clone());
        (out, wall)
    }

    /// Stops all threads.
    pub fn shutdown(&mut self) {
        self.rt.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    #[test]
    fn threaded_write_read_roundtrip() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut st = RtStorage::new(rqs, 1);
        let (w, w_wall) = st.write(7u64.into());
        assert_eq!(w.rounds, 1, "all servers alive: fast path");
        let (r, r_wall) = st.read(0);
        assert_eq!(r.returned.val, 7u64.into());
        assert_eq!(r.rounds, 1);
        assert!(w_wall < Duration::from_secs(5));
        assert!(r_wall < Duration::from_secs(5));
        st.shutdown();
    }

    #[test]
    fn threaded_sequence_of_operations() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut st = RtStorage::new(rqs, 2);
        for v in 1..=3u64 {
            st.write(v.into());
            let (r0, _) = st.read(0);
            let (r1, _) = st.read(1);
            assert_eq!(r0.returned.val, v.into());
            assert_eq!(r1.returned.val, v.into());
        }
        st.shutdown();
    }
}
