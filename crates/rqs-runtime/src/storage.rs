//! Threaded deployment of the RQS atomic storage: a thin wall-clock
//! wrapper around the substrate-generic
//! [`StorageDeployment`](rqs_storage::StorageDeployment), instantiated on
//! [`Runtime`]. Same automatons and driver code as the simulator harness,
//! real wall-clock latency.

use crate::runtime::{Runtime, DEFAULT_TICK};
use rqs_core::Rqs;
use rqs_sim::Scenario;
use rqs_storage::{ReadOutcome, StorageDeployment, StorageMsg, Value, WriteOutcome};
use std::time::{Duration, Instant};

/// A storage deployment over real threads and channels.
pub struct RtStorage {
    dep: StorageDeployment<Runtime<StorageMsg>>,
}

impl RtStorage {
    /// Deploys servers, one writer and `readers` reader clients over the
    /// given refined quorum system, with the default tick.
    pub fn new(rqs: Rqs, readers: usize) -> Self {
        Self::with_tick(rqs, readers, DEFAULT_TICK)
    }

    /// Deploys with an explicit tick length.
    pub fn with_tick(rqs: Rqs, readers: usize, tick: Duration) -> Self {
        Self::with_scenario(rqs, readers, Scenario::default(), tick)
    }

    /// Deploys under a fault scenario (compiled to an interposed
    /// message-filter thread plus a fault scheduler).
    pub fn with_scenario(rqs: Rqs, readers: usize, scenario: Scenario, tick: Duration) -> Self {
        RtStorage {
            dep: StorageDeployment::with_setup(rqs, readers, scenario, tick),
        }
    }

    /// The substrate-generic deployment driver underneath.
    pub fn deployment(&mut self) -> &mut StorageDeployment<Runtime<StorageMsg>> {
        &mut self.dep
    }

    /// Performs a complete write and returns `(outcome, wall_latency)`.
    ///
    /// # Panics
    ///
    /// Panics if the write does not complete within the operation timeout.
    pub fn write(&mut self, v: Value) -> (WriteOutcome, Duration) {
        let start = Instant::now();
        let out = self.dep.write(v);
        (out, start.elapsed())
    }

    /// Performs a complete read by reader `i`; returns
    /// `(outcome, wall_latency)`.
    ///
    /// # Panics
    ///
    /// Panics if the read does not complete within the operation timeout.
    pub fn read(&mut self, i: usize) -> (ReadOutcome, Duration) {
        let start = Instant::now();
        let out = self.dep.read(i);
        (out, start.elapsed())
    }

    /// Stops all threads.
    pub fn shutdown(&mut self) {
        self.dep.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    #[test]
    fn threaded_write_read_roundtrip() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut st = RtStorage::new(rqs, 1);
        let (w, w_wall) = st.write(7u64.into());
        assert_eq!(w.rounds, 1, "all servers alive: fast path");
        let (r, r_wall) = st.read(0);
        assert_eq!(r.returned.val, 7u64.into());
        assert_eq!(r.rounds, 1);
        assert!(w_wall < Duration::from_secs(5));
        assert!(r_wall < Duration::from_secs(5));
        st.shutdown();
    }

    #[test]
    fn threaded_sequence_of_operations() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut st = RtStorage::new(rqs, 2);
        for v in 1..=3u64 {
            st.write(v.into());
            let (r0, _) = st.read(0);
            let (r1, _) = st.read(1);
            assert_eq!(r0.returned.val, v.into());
            assert_eq!(r1.returned.val, v.into());
        }
        // The generic driver checks atomicity on the runtime too.
        st.deployment().check_atomicity().unwrap();
        st.shutdown();
    }
}
