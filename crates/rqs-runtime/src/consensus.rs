//! Threaded deployment of the RQS consensus.

use crate::runtime::{Runtime, RuntimeBuilder, DEFAULT_TICK};
use rqs_consensus::{
    Acceptor, ConsensusConfig, ConsensusMsg, Learner, ProposalValue, Proposer,
};
use rqs_core::{ProcessId, Rqs};
use rqs_crypto::{KeyRegistry, SignerId};
use rqs_sim::NodeId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A consensus deployment over real threads and channels.
pub struct RtConsensus {
    rt: Runtime<ConsensusMsg>,
    cfg: ConsensusConfig,
    op_timeout: Duration,
}

impl RtConsensus {
    /// Deploys acceptors, proposers and learners with the default tick.
    pub fn new(rqs: Rqs, proposers: usize, learners: usize) -> Self {
        Self::with_tick(rqs, proposers, learners, DEFAULT_TICK)
    }

    /// Deploys with an explicit tick length.
    pub fn with_tick(rqs: Rqs, proposers: usize, learners: usize, tick: Duration) -> Self {
        let n = rqs.universe_size();
        let rqs = Arc::new(rqs);
        let registry = KeyRegistry::new(n, 0xFEED);
        let cfg = ConsensusConfig {
            rqs,
            registry: registry.clone(),
            acceptors: (0..n).map(NodeId).collect(),
            proposers: (n..n + proposers).map(NodeId).collect(),
            learners: (n + proposers..n + proposers + learners).map(NodeId).collect(),
        };
        let mut builder = RuntimeBuilder::new().tick(tick);
        for i in 0..n {
            builder = builder.node(Box::new(Acceptor::new(
                cfg.clone(),
                ProcessId(i),
                registry.signer(SignerId(i)),
            )));
        }
        for i in 0..proposers {
            let me = cfg.proposers[i];
            builder = builder.node(Box::new(Proposer::new(cfg.clone(), me)));
        }
        for _ in 0..learners {
            builder = builder.node(Box::new(Learner::new(cfg.clone())));
        }
        RtConsensus {
            rt: builder.start(),
            cfg,
            op_timeout: Duration::from_secs(30),
        }
    }

    /// Proposer `i` proposes `value`; returns the wall-clock latency until
    /// **all** learners learned.
    ///
    /// # Panics
    ///
    /// Panics if learning does not complete within 30 s.
    pub fn propose_and_learn(&self, i: usize, value: ProposalValue) -> Duration {
        let start = Instant::now();
        self.rt
            .invoke::<Proposer>(self.cfg.proposers[i], move |p, ctx| p.propose(value, ctx));
        for &l in &self.cfg.learners {
            let ok = self.rt.wait_for::<Learner>(
                l,
                |lr| lr.learned().is_some(),
                self.op_timeout,
            );
            assert!(ok, "learner did not learn");
        }
        start.elapsed()
    }

    /// Learned value of learner `i`.
    pub fn learned(&self, i: usize) -> Option<ProposalValue> {
        self.rt
            .inspect::<Learner, Option<ProposalValue>>(self.cfg.learners[i], |l| {
                l.learned().map(|(v, _)| v)
            })
    }

    /// Stops all threads.
    pub fn shutdown(&mut self) {
        self.rt.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    #[test]
    fn threaded_consensus_learns() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut c = RtConsensus::new(rqs, 2, 2);
        let wall = c.propose_and_learn(0, 42);
        assert_eq!(c.learned(0), Some(42));
        assert_eq!(c.learned(1), Some(42));
        assert!(wall < Duration::from_secs(5));
        c.shutdown();
    }
}
