//! Threaded deployment of the RQS consensus: a thin wall-clock wrapper
//! around the substrate-generic
//! [`ConsensusDeployment`](rqs_consensus::ConsensusDeployment),
//! instantiated on [`Runtime`].

use crate::runtime::{Runtime, DEFAULT_TICK};
use rqs_consensus::{ConsensusDeployment, ConsensusMsg, ProposalValue};
use rqs_core::Rqs;
use rqs_sim::Scenario;
use std::time::{Duration, Instant};

/// A consensus deployment over real threads and channels.
pub struct RtConsensus {
    dep: ConsensusDeployment<Runtime<ConsensusMsg>>,
}

impl RtConsensus {
    /// Deploys acceptors, proposers and learners with the default tick.
    pub fn new(rqs: Rqs, proposers: usize, learners: usize) -> Self {
        Self::with_tick(rqs, proposers, learners, DEFAULT_TICK)
    }

    /// Deploys with an explicit tick length.
    pub fn with_tick(rqs: Rqs, proposers: usize, learners: usize, tick: Duration) -> Self {
        Self::with_scenario(rqs, proposers, learners, Scenario::default(), tick)
    }

    /// Deploys under a fault scenario.
    pub fn with_scenario(
        rqs: Rqs,
        proposers: usize,
        learners: usize,
        scenario: Scenario,
        tick: Duration,
    ) -> Self {
        RtConsensus {
            dep: ConsensusDeployment::with_setup(rqs, proposers, learners, scenario, tick),
        }
    }

    /// The substrate-generic deployment driver underneath.
    pub fn deployment(&mut self) -> &mut ConsensusDeployment<Runtime<ConsensusMsg>> {
        &mut self.dep
    }

    /// Proposer `i` proposes `value`; returns the wall-clock latency until
    /// **all** learners learned.
    ///
    /// # Panics
    ///
    /// Panics if learning does not complete within the operation timeout.
    pub fn propose_and_learn(&mut self, i: usize, value: ProposalValue) -> Duration {
        let start = Instant::now();
        self.dep.propose(i, value);
        assert!(self.dep.run_until_learned(0), "learners did not learn");
        start.elapsed()
    }

    /// Learned value of learner `i`.
    pub fn learned(&self, i: usize) -> Option<ProposalValue> {
        self.dep.learned(i)
    }

    /// Stops all threads.
    pub fn shutdown(&mut self) {
        self.dep.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    #[test]
    fn threaded_consensus_learns() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut c = RtConsensus::new(rqs, 2, 2);
        let wall = c.propose_and_learn(0, 42);
        assert_eq!(c.learned(0), Some(42));
        assert_eq!(c.learned(1), Some(42));
        assert!(wall < Duration::from_secs(5));
        c.shutdown();
    }
}
