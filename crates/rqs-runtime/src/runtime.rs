//! A threaded, real-time execution environment for the same automatons
//! that run in the deterministic simulator.
//!
//! Every node runs on its own OS thread with a crossbeam channel inbox;
//! messages travel between threads, and protocol timers (in simulated
//! ticks) are mapped to wall-clock durations by a configurable tick
//! length. This is the deployment used by the wall-clock benchmarks
//! (experiment E11): same protocol code, real channels and real time.

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default wall-clock length of one protocol tick (`Δ`).
pub const DEFAULT_TICK: Duration = Duration::from_millis(2);

enum Event<M> {
    Msg {
        from: NodeId,
        msg: M,
    },
    Timer(TimerToken),
    #[allow(clippy::type_complexity)]
    Call(Box<dyn FnOnce(&mut dyn Automaton<M>, &mut Context<M>) + Send>),
    Shutdown,
}

struct TimerReq {
    due: Instant,
    node: usize,
    token: TimerToken,
}

impl PartialEq for TimerReq {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for TimerReq {}
impl PartialOrd for TimerReq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerReq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: earliest due first in the max-heap.
        other.due.cmp(&self.due)
    }
}

struct TimerWheel {
    heap: Mutex<BinaryHeap<TimerReq>>,
    cv: Condvar,
    shutdown: Mutex<bool>,
}

/// A running threaded deployment.
///
/// Build with [`RuntimeBuilder`]; interact through [`Runtime::send`],
/// [`Runtime::invoke`] and [`Runtime::inspect`]; shut down with
/// [`Runtime::shutdown`] (also runs on drop).
pub struct Runtime<M: Send + 'static> {
    senders: Vec<Sender<Event<M>>>,
    handles: Vec<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
    wheel: Arc<TimerWheel>,
    started: Instant,
    tick: Duration,
}

/// Builder collecting the node automatons.
pub struct RuntimeBuilder<M: Send + 'static> {
    nodes: Vec<Box<dyn Automaton<M> + Send>>,
    tick: Duration,
}

impl<M: Send + Clone + 'static> Default for RuntimeBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + Clone + 'static> RuntimeBuilder<M> {
    /// Empty builder with the default tick.
    pub fn new() -> Self {
        RuntimeBuilder {
            nodes: Vec::new(),
            tick: DEFAULT_TICK,
        }
    }

    /// Overrides the wall-clock duration of one protocol tick.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Adds a node; ids are assigned densely from 0 (matching the
    /// simulator convention).
    pub fn node(mut self, node: Box<dyn Automaton<M> + Send>) -> Self {
        self.nodes.push(node);
        self
    }

    /// Spawns all node threads and the timer wheel.
    pub fn start(self) -> Runtime<M> {
        let started = Instant::now();
        let tick = self.tick;
        let n = self.nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Event<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let wheel = Arc::new(TimerWheel {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            shutdown: Mutex::new(false),
        });

        // Timer thread: fires due timers into node inboxes.
        let timer_thread = {
            let wheel = wheel.clone();
            let senders = senders.clone();
            std::thread::spawn(move || loop {
                let mut fire: Vec<(usize, TimerToken)> = Vec::new();
                {
                    let mut heap = wheel.heap.lock();
                    loop {
                        if *wheel.shutdown.lock() {
                            return;
                        }
                        let now = Instant::now();
                        match heap.peek() {
                            Some(req) if req.due <= now => {
                                let req = heap.pop().expect("peeked");
                                fire.push((req.node, req.token));
                            }
                            Some(req) => {
                                let due = req.due;
                                wheel.cv.wait_until(&mut heap, due);
                            }
                            None => {
                                wheel.cv.wait_for(&mut heap, Duration::from_millis(50));
                            }
                        }
                        if !fire.is_empty() {
                            break;
                        }
                    }
                }
                for (node, token) in fire {
                    let _ = senders[node].send(Event::Timer(token));
                }
            })
        };

        // Node threads.
        let mut handles = Vec::with_capacity(n);
        for (i, (mut node, rx)) in self.nodes.into_iter().zip(receivers).enumerate() {
            let senders = senders.clone();
            let wheel = wheel.clone();
            let handle = std::thread::spawn(move || {
                let me = NodeId(i);
                let mut timer_counter: u64 = (i as u64) << 32;
                let mut cancelled: Vec<TimerToken> = Vec::new();
                // Start hook, mirroring World::start.
                {
                    let mut ctx: Context<M> = Context::new(me, Time(0), timer_counter);
                    node.on_start(&mut ctx);
                    timer_counter = drain_context(
                        ctx,
                        me,
                        &senders,
                        &wheel,
                        &mut cancelled,
                        started,
                        tick,
                    );
                }
                for event in rx.iter() {
                    let now_ticks = started_ticks(started, tick);
                    let mut ctx: Context<M> = Context::new(me, Time(now_ticks), timer_counter);
                    match event {
                        Event::Shutdown => return,
                        Event::Msg { from, msg } => node.on_message(from, msg, &mut ctx),
                        Event::Timer(token) => {
                            if let Some(pos) = cancelled.iter().position(|&t| t == token) {
                                cancelled.swap_remove(pos);
                            } else {
                                node.on_timer(token, &mut ctx);
                            }
                        }
                        Event::Call(f) => f(node.as_mut(), &mut ctx),
                    }
                    timer_counter = drain_context(
                        ctx,
                        me,
                        &senders,
                        &wheel,
                        &mut cancelled,
                        started,
                        tick,
                    );
                }
            });
            handles.push(handle);
        }

        Runtime {
            senders,
            handles,
            timer_thread: Some(timer_thread),
            wheel,
            started,
            tick,
        }
    }
}

fn started_ticks(started: Instant, tick: Duration) -> u64 {
    (started.elapsed().as_nanos() / tick.as_nanos().max(1)) as u64
}

fn drain_context<M: Send + Clone + 'static>(
    ctx: Context<M>,
    me: NodeId,
    senders: &[Sender<Event<M>>],
    wheel: &TimerWheel,
    cancelled: &mut Vec<TimerToken>,
    _started: Instant,
    tick: Duration,
) -> u64 {
    let counter = ctx.timer_counter_snapshot();
    let (outbox, timers, newly_cancelled) = ctx.into_outputs();
    for (to, msg) in outbox {
        if let Some(tx) = senders.get(to.0) {
            let _ = tx.send(Event::Msg { from: me, msg });
        }
    }
    if !timers.is_empty() {
        let mut heap = wheel.heap.lock();
        for (delay, token) in timers {
            heap.push(TimerReq {
                due: Instant::now() + tick * (delay as u32),
                node: me.0,
                token,
            });
        }
        wheel.cv.notify_one();
    }
    cancelled.extend(newly_cancelled);
    counter
}

impl<M: Send + Clone + 'static> Runtime<M> {
    /// Injects a message into `to`'s inbox, attributed to `from`.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) {
        let _ = self.senders[to.0].send(Event::Msg { from, msg });
    }

    /// Runs a closure on the node's automaton (typed), on its own thread.
    /// Does not wait for completion.
    pub fn invoke<T: 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<M>) + Send + 'static,
    ) {
        let _ = self.senders[id.0].send(Event::Call(Box::new(move |node, ctx| {
            let concrete = node
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(concrete, ctx);
        })));
    }

    /// Runs a closure on the node's automaton and returns its result,
    /// blocking until the node processes the request.
    pub fn inspect<T: 'static, R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&T) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = crossbeam_channel::bounded(1);
        let _ = self.senders[id.0].send(Event::Call(Box::new(move |node, _ctx| {
            let concrete = node
                .as_any()
                .downcast_ref::<T>()
                .expect("node type mismatch");
            let _ = tx.send(f(concrete));
        })));
        rx.recv().expect("node thread alive")
    }

    /// Blocks until `pred` over the node holds (polling), or the timeout
    /// elapses; returns whether it held.
    pub fn wait_for<T: 'static>(
        &self,
        id: NodeId,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
        timeout: Duration,
    ) -> bool {
        let pred = Arc::new(pred);
        let deadline = Instant::now() + timeout;
        loop {
            let p = pred.clone();
            if self.inspect::<T, bool>(id, move |t| p(t)) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.tick / 4 + Duration::from_micros(100));
        }
    }

    /// Elapsed wall-clock since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The tick length in use.
    pub fn tick_len(&self) -> Duration {
        self.tick
    }

    /// Stops all threads.
    pub fn shutdown(&mut self) {
        *self.wheel.shutdown.lock() = true;
        self.wheel.cv.notify_one();
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

impl<M: Send + 'static> Drop for Runtime<M> {
    fn drop(&mut self) {
        *self.wheel.shutdown.lock() = true;
        self.wheel.cv.notify_one();
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Default)]
    struct Echo {
        got: Vec<u32>,
    }

    impl Automaton<u32> for Echo {
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.got.push(msg);
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_across_threads() {
        let mut rt = RuntimeBuilder::new()
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.send(NodeId(0), NodeId(1), 4);
        let done = rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| e.got.iter().sum::<u32>() >= (4 + 2),
            Duration::from_secs(5),
        );
        assert!(done, "ping-pong should converge");
        let got0 = rt.inspect::<Echo, Vec<u32>>(NodeId(0), |e| e.got.clone());
        assert_eq!(got0, vec![3, 1]);
        rt.shutdown();
    }

    #[derive(Default)]
    struct TimerUser {
        fired: usize,
    }

    impl Automaton<u32> for TimerUser {
        fn on_message(&mut self, _f: NodeId, _m: u32, ctx: &mut Context<u32>) {
            ctx.set_timer(2);
        }
        fn on_timer(&mut self, _t: TimerToken, _ctx: &mut Context<u32>) {
            self.fired += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_real_time() {
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .node(Box::new(TimerUser::default()))
            .start();
        rt.send(NodeId(0), NodeId(0), 0);
        let ok = rt.wait_for::<TimerUser>(
            NodeId(0),
            |t: &TimerUser| t.fired >= 1,
            Duration::from_secs(5),
        );
        assert!(ok);
        rt.shutdown();
    }

    #[test]
    fn invoke_runs_on_node_thread() {
        let mut rt = RuntimeBuilder::new()
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.invoke::<Echo>(NodeId(0), |_e, ctx| ctx.send(NodeId(1), 0));
        let ok = rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_secs(5),
        );
        assert!(ok);
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut rt: Runtime<u32> = RuntimeBuilder::new()
            .node(Box::new(Echo::default()))
            .start();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }
}
