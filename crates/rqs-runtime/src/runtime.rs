//! A threaded, real-time execution environment for the same automatons
//! that run in the deterministic simulator.
//!
//! Every node runs on its own OS thread with a crossbeam channel inbox;
//! messages travel between threads, and protocol timers (in simulated
//! ticks) are mapped to wall-clock durations by a configurable tick
//! length. This is the deployment used by the wall-clock benchmarks
//! (experiment E11): same protocol code, real channels and real time.
//!
//! The runtime implements [`Substrate`], so every deployment driver
//! written against that trait runs here unchanged. Fault scenarios
//! ([`Scenario`]) compile to an **interposed message-filter thread**
//! (drops, delays, duplication, partition-and-heal — the wall-clock
//! analogue of the simulator's fate policy) plus a **fault scheduler
//! thread** that crashes and restarts nodes at their scheduled ticks.

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rqs_obs::{NopTracer, Obs, ObsHandle, TraceKind, LANE_SYS};
use rqs_sim::{
    Automaton, Context, CrashMode, LinkDecision, NodeId, Scenario, ScenarioNet, Substrate,
    SubstrateConfig, SubstrateStats, Time, TimerToken, DEFAULT_OP_TIMEOUT,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default wall-clock length of one protocol tick (`Δ`).
pub const DEFAULT_TICK: Duration = rqs_sim::DEFAULT_TICK;

/// Spawns a named OS thread (names show up in `/proc/<pid>/task/*` and
/// debuggers, which is how per-thread CPU is attributed when profiling
/// the runtime).
fn spawn_named<F>(name: &str, f: F) -> JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .unwrap_or_else(|e| panic!("spawn {name}: {e}"))
}

enum Event<M> {
    Msg {
        from: NodeId,
        msg: M,
    },
    Timer(TimerToken),
    #[allow(clippy::type_complexity)]
    Call(Box<dyn FnOnce(&mut dyn Automaton<M>, &mut Context<M>) + Send>),
    Crash(CrashMode),
    Restart,
    Replace(Box<dyn Automaton<M> + Send>),
    Shutdown,
}

struct TimerReq {
    due: Instant,
    node: usize,
    token: TimerToken,
}

impl PartialEq for TimerReq {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for TimerReq {}
impl PartialOrd for TimerReq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerReq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: earliest due first in the max-heap.
        other.due.cmp(&self.due)
    }
}

struct TimerWheel {
    heap: Mutex<BinaryHeap<TimerReq>>,
    cv: Condvar,
    shutdown: Mutex<bool>,
    /// Tokens cancelled after arming: the wheel drops their entries at
    /// pop time instead of waking the owning node just to swallow the
    /// firing. Most protocol timers (op timeouts, retry watchdogs) are
    /// cancelled on completion, so on the hot path this suppression
    /// saves one cross-thread event per armed timer.
    cancelled: Mutex<std::collections::HashSet<u64>>,
    /// Per-node acks for wheel-side suppression: when the wheel drops a
    /// cancelled entry it records the token here, and the owner drains
    /// the list on its next `drain_context` to garbage-collect its own
    /// swallow list. A cancellation that loses the race (the firing was
    /// already in flight) is still swallowed node-locally.
    suppressed: Vec<Mutex<Vec<TimerToken>>>,
}

/// Message counters shared between node threads and the runtime handle.
#[derive(Default)]
struct Counters {
    envelopes: AtomicU64,
    items: AtomicU64,
}

/// The outbound network path every node send goes through: counts
/// envelopes/items, then either hands the message to the interposer
/// thread (when a scenario shapes the links) or delivers it directly
/// into the destination inbox.
struct NetOut<M> {
    senders: Vec<Sender<Event<M>>>,
    interposer: Option<Sender<Outbound<M>>>,
    counters: Counters,
    sizer: fn(&M) -> u64,
    started: Instant,
    tick: Duration,
}

impl<M> NetOut<M> {
    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        self.counters.envelopes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .items
            .fetch_add((self.sizer)(&msg), Ordering::Relaxed);
        if let Some(tx) = &self.interposer {
            // Stamp the send tick here: windowed link rules must key on
            // when the message was sent (the simulator's `env.sent_at`),
            // not on when the interposer dequeues it.
            let sent_tick = started_ticks(self.started, self.tick);
            let _ = tx.send(Outbound {
                from,
                to,
                msg,
                sent_tick,
            });
        } else if let Some(tx) = self.senders.get(to.0) {
            let _ = tx.send(Event::Msg { from, msg });
        }
    }
}

/// A cloneable handle auxiliary threads use to send messages into the
/// runtime's network — e.g. a server-side worker pool replying on
/// behalf of its node. Sends are counted and scenario-interposed
/// exactly like automaton sends.
///
/// Handles keep the network path alive: drop them (worker pools join
/// in their owner's `Drop`, which runs when the node thread exits) so
/// [`Runtime::shutdown`] can close the interposer.
pub struct NetHandle<M: Send + 'static> {
    net: Arc<NetOut<M>>,
}

impl<M: Send + 'static> Clone for NetHandle<M> {
    fn clone(&self) -> Self {
        NetHandle {
            net: self.net.clone(),
        }
    }
}

impl<M: Send + 'static> core::fmt::Debug for NetHandle<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("NetHandle")
    }
}

impl<M: Send + 'static> NetHandle<M> {
    /// Injects `msg` into `to`'s inbox attributed to `from`, subject to
    /// the scenario's link schedule.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) {
        self.net.send(from, to, msg);
    }
}

/// A message travelling through the interposer.
struct Outbound<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
    sent_tick: u64,
}

struct Delayed<M> {
    due: Instant,
    seq: u64,
    out: Outbound<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Shutdown latch for the helper threads (interposer, fault scheduler).
struct Latch {
    closed: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            closed: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn close(&self) {
        *self.closed.lock() = true;
        self.cv.notify_all();
    }

    /// Waits until the latch closes or `deadline` passes; returns `true`
    /// iff the latch closed.
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut guard = self.closed.lock();
        while !*guard {
            if Instant::now() >= deadline {
                return false;
            }
            self.cv.wait_until(&mut guard, deadline);
        }
        true
    }
}

/// A running threaded deployment.
///
/// Build with [`RuntimeBuilder`] (or generically through
/// [`Substrate::build`]); interact through [`Runtime::send`],
/// [`Runtime::invoke`] and [`Runtime::inspect`]; shut down with
/// [`Runtime::shutdown`] (also runs on drop).
pub struct Runtime<M: Send + 'static> {
    senders: Vec<Sender<Event<M>>>,
    handles: Vec<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
    wheel: Arc<TimerWheel>,
    net: Option<Arc<NetOut<M>>>,
    interposer_thread: Option<JoinHandle<()>>,
    fault_thread: Option<JoinHandle<()>>,
    latch: Arc<Latch>,
    started: Instant,
    tick: Duration,
    op_timeout: Duration,
}

/// Builder collecting the node automatons and the deployment shape.
pub struct RuntimeBuilder<M: Send + 'static> {
    nodes: Vec<Box<dyn Automaton<M> + Send>>,
    tick: Duration,
    op_timeout: Duration,
    scenario: Scenario,
    sizer: fn(&M) -> u64,
    tracer: ObsHandle,
}

impl<M: Send + Clone + 'static> Default for RuntimeBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + Clone + 'static> RuntimeBuilder<M> {
    /// Empty builder with the default tick.
    pub fn new() -> Self {
        RuntimeBuilder {
            nodes: Vec::new(),
            tick: DEFAULT_TICK,
            op_timeout: DEFAULT_OP_TIMEOUT,
            scenario: Scenario::default(),
            sizer: |_| 1,
            tracer: Arc::new(NopTracer),
        }
    }

    /// Overrides the wall-clock duration of one protocol tick.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Overrides the [`Runtime::wait_for`] timeout used by generic
    /// substrate awaits.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Installs a fault scenario: link rules run in an interposer thread
    /// between the node inboxes; crash plans run on a fault scheduler.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Installs a payload sizer for the message statistics.
    pub fn sizer(mut self, sizer: fn(&M) -> u64) -> Self {
        self.sizer = sizer;
        self
    }

    /// Installs a structured-trace sink: node threads emit
    /// deliver/drop/crash/recover events into it (wall-clock analogue of
    /// the simulator's world-level tracing).
    pub fn tracer(mut self, tracer: ObsHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Adds a node; ids are assigned densely from 0 (matching the
    /// simulator convention).
    pub fn node(mut self, node: Box<dyn Automaton<M> + Send>) -> Self {
        self.nodes.push(node);
        self
    }

    /// Spawns all node threads, the timer wheel, and (when the scenario
    /// calls for them) the interposer and fault scheduler threads.
    pub fn start(self) -> Runtime<M> {
        let started = Instant::now();
        let tick = self.tick;
        let n = self.nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Event<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let wheel = Arc::new(TimerWheel {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            shutdown: Mutex::new(false),
            cancelled: Mutex::new(std::collections::HashSet::new()),
            suppressed: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let latch = Latch::new();

        // Interposer: the wall-clock compilation of the scenario's link
        // rules. Every node send is routed through it; it decides each
        // message's fate with the same ScenarioNet core the simulator's
        // fate policy uses, mapping tick delays onto wall-clock instants.
        let (interposer_tx, interposer_thread) = if self.scenario.links.is_empty() {
            (None, None)
        } else {
            let (tx, rx) = unbounded::<Outbound<M>>();
            let net = self.scenario.network();
            let senders = senders.clone();
            let obs = Obs::new(self.tracer.clone(), 0);
            let handle = std::thread::Builder::new()
                .name("rt-interposer".into())
                .spawn(move || run_interposer(rx, senders, net, started, tick, obs))
                .expect("spawn interposer thread");
            (Some(tx), Some(handle))
        };

        // Fault scheduler: crashes and restarts nodes at their scheduled
        // ticks, mapped to wall-clock via the tick length.
        let fault_thread = if self.scenario.crashes.is_empty() {
            None
        } else {
            let mut plan: Vec<(u64, usize, bool, CrashMode)> = Vec::new();
            for c in &self.scenario.crashes {
                plan.push((c.at, c.node, false, c.crash_mode));
                if let Some(r) = c.restart_at {
                    plan.push((r, c.node, true, c.crash_mode));
                }
            }
            plan.sort_unstable_by_key(|&(at, node, is_restart, _)| (at, node, is_restart));
            let senders = senders.clone();
            let latch = latch.clone();
            let fault_handle = std::thread::Builder::new()
                .name("rt-faults".into())
                .spawn(move || {
                    for (at, node, is_restart, mode) in plan {
                        let due = started + ticks_to_wall(tick, at);
                        if latch.wait_until(due) {
                            return; // shutdown
                        }
                        let event = if is_restart {
                            Event::Restart
                        } else {
                            Event::Crash(mode)
                        };
                        if let Some(tx) = senders.get(node) {
                            let _ = tx.send(event);
                        }
                    }
                })
                .expect("spawn fault scheduler thread");
            Some(fault_handle)
        };

        let net = Arc::new(NetOut {
            senders: senders.clone(),
            interposer: interposer_tx,
            counters: Counters::default(),
            sizer: self.sizer,
            started,
            tick,
        });

        // Timer thread: fires due timers into node inboxes.
        let timer_thread = {
            let wheel = wheel.clone();
            let senders = senders.clone();
            spawn_named("rt-timer-wheel", move || loop {
                let mut fire: Vec<(usize, TimerToken)> = Vec::new();
                {
                    let mut heap = wheel.heap.lock();
                    loop {
                        if *wheel.shutdown.lock() {
                            return;
                        }
                        let now = Instant::now();
                        match heap.peek() {
                            Some(req) if req.due <= now => {
                                let req = heap.pop().expect("peeked");
                                fire.push((req.node, req.token));
                            }
                            Some(req) => {
                                let due = req.due;
                                wheel.cv.wait_until(&mut heap, due);
                            }
                            None => {
                                wheel.cv.wait_for(&mut heap, Duration::from_millis(50));
                            }
                        }
                        if !fire.is_empty() {
                            break;
                        }
                    }
                }
                let mut cancelled = wheel.cancelled.lock();
                for (node, token) in fire {
                    if cancelled.remove(&token.0) {
                        // Cancelled before it came due: drop the firing
                        // here and ack the owner so it can forget the
                        // token.
                        wheel.suppressed[node].lock().push(token);
                    } else {
                        let _ = senders[node].send(Event::Timer(token));
                    }
                }
            })
        };

        // Node threads.
        let mut handles = Vec::with_capacity(n);
        let obs = Obs::new(self.tracer.clone(), 0);
        for (i, (mut node, rx)) in self.nodes.into_iter().zip(receivers).enumerate() {
            let net = net.clone();
            let wheel = wheel.clone();
            let obs = obs.clone();
            let handle = spawn_named(&format!("rt-node-{i}"), move || {
                let me = NodeId(i);
                let mut timer_counter: u64 = (i as u64) << 32;
                let mut cancelled: Vec<TimerToken> = Vec::new();
                let mut crashed = false;
                let mut crash_mode = CrashMode::Retain;
                // Start hook, mirroring World::start.
                {
                    let mut ctx: Context<M> = Context::new(me, Time(0), timer_counter);
                    node.on_start(&mut ctx);
                    timer_counter = drain_context(ctx, me, &net, &wheel, &mut cancelled, tick);
                }
                for event in rx.iter() {
                    let now_ticks = started_ticks(started, tick);
                    let mut ctx: Context<M> = Context::new(me, Time(now_ticks), timer_counter);
                    match event {
                        Event::Shutdown => return,
                        Event::Crash(mode) => {
                            crashed = true;
                            crash_mode = mode;
                            // Timers are volatile state: purge this
                            // node's pending wheel entries so no
                            // pre-crash timer fires after a restart.
                            let mut heap = wheel.heap.lock();
                            let drained = std::mem::take(&mut *heap);
                            let mut purged = Vec::new();
                            *heap = drained
                                .into_iter()
                                .filter(|r| {
                                    if r.node == i {
                                        purged.push(r.token);
                                    }
                                    r.node != i
                                })
                                .collect();
                            drop(heap);
                            // Purged entries will never reach the wheel's
                            // pop-time check; drop their suppression
                            // markers too so the set stays bounded.
                            if !purged.is_empty() {
                                let mut wheel_cancelled = wheel.cancelled.lock();
                                for token in purged {
                                    wheel_cancelled.remove(&token.0);
                                }
                            }
                            wheel.suppressed[i].lock().clear();
                            cancelled.clear();
                            obs.emit(
                                TraceKind::Crash,
                                now_ticks,
                                i as u64,
                                LANE_SYS,
                                mode as u64,
                                0,
                            );
                            continue;
                        }
                        Event::Restart => {
                            crashed = false;
                            let mut replayed = 0usize;
                            let mut amnesia = 0u64;
                            if crash_mode == CrashMode::Amnesia {
                                crash_mode = CrashMode::Retain;
                                replayed = node.restore_state();
                                amnesia = 1;
                            }
                            obs.emit(
                                TraceKind::Recover,
                                now_ticks,
                                i as u64,
                                LANE_SYS,
                                replayed as u64,
                                amnesia,
                            );
                            continue;
                        }
                        Event::Replace(new_node) => {
                            node = new_node;
                            continue;
                        }
                        // A crashed node neither receives nor fires
                        // timers (messages arriving meanwhile are lost,
                        // like the simulator's crashed-receiver drops);
                        // Call still runs so inspection keeps working.
                        Event::Msg { from, .. } if crashed => {
                            obs.emit(
                                TraceKind::Drop,
                                now_ticks,
                                i as u64,
                                LANE_SYS,
                                from.0 as u64,
                                1,
                            );
                            continue;
                        }
                        Event::Timer(_) if crashed => continue,
                        Event::Msg { from, msg } => {
                            obs.emit(
                                TraceKind::Deliver,
                                now_ticks,
                                i as u64,
                                LANE_SYS,
                                from.0 as u64,
                                0,
                            );
                            node.on_message(from, msg, &mut ctx)
                        }
                        Event::Timer(token) => {
                            if let Some(pos) = cancelled.iter().position(|&t| t == token) {
                                cancelled.swap_remove(pos);
                            } else {
                                node.on_timer(token, &mut ctx);
                            }
                        }
                        Event::Call(f) => f(node.as_mut(), &mut ctx),
                    }
                    timer_counter = drain_context(ctx, me, &net, &wheel, &mut cancelled, tick);
                }
            });
            handles.push(handle);
        }

        Runtime {
            senders,
            handles,
            timer_thread: Some(timer_thread),
            wheel,
            net: Some(net),
            interposer_thread,
            fault_thread,
            latch,
            started,
            tick,
            op_timeout: self.op_timeout,
        }
    }
}

fn started_ticks(started: Instant, tick: Duration) -> u64 {
    (started.elapsed().as_nanos() / tick.as_nanos().max(1)) as u64
}

/// `t` ticks as wall-clock time, without the u32 truncation of
/// `Duration * u32` (far-future scenario ticks saturate at ~584 years
/// instead of silently wrapping to "almost now").
fn ticks_to_wall(tick: Duration, t: u64) -> Duration {
    Duration::from_nanos((tick.as_nanos() as u64).saturating_mul(t))
}

/// The interposer loop: applies the scenario's link schedule to every
/// in-flight message. Held/delayed messages wait in a local heap keyed by
/// wall-clock due time; the loop exits when every sender is gone.
fn run_interposer<M: Send + Clone + 'static>(
    rx: Receiver<Outbound<M>>,
    senders: Vec<Sender<Event<M>>>,
    mut net: ScenarioNet,
    started: Instant,
    tick: Duration,
    obs: Obs,
) {
    let mut heap: BinaryHeap<Reverse<Delayed<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    let deliver = |out: Outbound<M>| {
        if let Some(tx) = senders.get(out.to.0) {
            let _ = tx.send(Event::Msg {
                from: out.from,
                msg: out.msg,
            });
        }
    };
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.due <= now) {
            let Reverse(d) = heap.pop().expect("peeked");
            deliver(d.out);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(d)| d.due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        let out = match rx.recv_timeout(timeout) {
            Ok(out) => out,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut hold =
            |due: Instant, out: Outbound<M>, heap: &mut BinaryHeap<Reverse<Delayed<M>>>| {
                seq += 1;
                heap.push(Reverse(Delayed { due, seq, out }));
            };
        match net.decide(out.from, out.to, out.sent_tick) {
            LinkDecision::Deliver { extra: 0 } => deliver(out),
            LinkDecision::Deliver { extra } => {
                hold(Instant::now() + ticks_to_wall(tick, extra), out, &mut heap);
            }
            LinkDecision::DeliverAtTick(t) => {
                hold(started + ticks_to_wall(tick, t), out, &mut heap);
            }
            LinkDecision::Drop => {
                obs.emit(
                    TraceKind::Drop,
                    started_ticks(started, tick),
                    out.to.0 as u64,
                    LANE_SYS,
                    out.from.0 as u64,
                    0,
                );
            }
            LinkDecision::Duplicate { lag } => {
                let copy = Outbound {
                    from: out.from,
                    to: out.to,
                    msg: out.msg.clone(),
                    sent_tick: out.sent_tick,
                };
                deliver(out);
                hold(
                    Instant::now() + ticks_to_wall(tick, lag.max(1)),
                    copy,
                    &mut heap,
                );
            }
        }
    }
}

fn drain_context<M: Send + Clone + 'static>(
    ctx: Context<M>,
    me: NodeId,
    net: &NetOut<M>,
    wheel: &TimerWheel,
    cancelled: &mut Vec<TimerToken>,
    tick: Duration,
) -> u64 {
    let counter = ctx.timer_counter_snapshot();
    let (outbox, timers, newly_cancelled) = ctx.into_outputs();
    for (to, msg) in outbox {
        net.send(me, to, msg);
    }
    if !timers.is_empty() {
        let mut heap = wheel.heap.lock();
        for (delay, token) in timers {
            heap.push(TimerReq {
                due: Instant::now() + ticks_to_wall(tick, delay),
                node: me.0,
                token,
            });
        }
        wheel.cv.notify_one();
    }
    // Publish cancellations to the wheel (which suppresses the firing
    // when it wins the race) *and* remember them locally (which swallows
    // the firing when the wheel already sent it). The wheel acks each
    // suppression through `suppressed`, so the local list stays bounded
    // by the genuinely in-flight cancellations.
    if !newly_cancelled.is_empty() {
        let mut wheel_cancelled = wheel.cancelled.lock();
        wheel_cancelled.extend(newly_cancelled.iter().map(|t| t.0));
    }
    cancelled.extend(newly_cancelled);
    let acked = std::mem::take(&mut *wheel.suppressed[me.0].lock());
    for token in acked {
        if let Some(pos) = cancelled.iter().position(|&t| t == token) {
            cancelled.swap_remove(pos);
        }
    }
    counter
}

impl<M: Send + Clone + 'static> Runtime<M> {
    /// Injects a message into `to`'s inbox, attributed to `from`, subject
    /// to the scenario's link schedule.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) {
        if let Some(net) = &self.net {
            net.send(from, to, msg);
        }
    }

    /// A handle for injecting messages from auxiliary threads (worker
    /// pools, external drivers).
    ///
    /// # Panics
    ///
    /// Panics after [`Runtime::shutdown`].
    pub fn net_handle(&self) -> NetHandle<M> {
        NetHandle {
            net: self.net.clone().expect("runtime is shut down"),
        }
    }

    /// Runs a closure on the node's automaton (typed), on its own thread.
    /// Does not wait for completion.
    pub fn invoke<T: 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<M>) + Send + 'static,
    ) {
        let _ = self.senders[id.0].send(Event::Call(Box::new(move |node, ctx| {
            let concrete = node
                .as_any_mut()
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(concrete, ctx);
        })));
    }

    /// Runs a closure on the node's automaton and returns its result,
    /// blocking until the node processes the request.
    pub fn inspect<T: 'static, R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&T) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = crossbeam_channel::bounded(1);
        let _ = self.senders[id.0].send(Event::Call(Box::new(move |node, _ctx| {
            let concrete = node
                .as_any()
                .downcast_ref::<T>()
                .expect("node type mismatch");
            let _ = tx.send(f(concrete));
        })));
        rx.recv().expect("node thread alive")
    }

    /// Blocks until `pred` over the node holds (polling), or the timeout
    /// elapses; returns whether it held. The blocking analogue of the
    /// simulator's `run_until`.
    pub fn wait_for<T: 'static>(
        &self,
        id: NodeId,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
        timeout: Duration,
    ) -> bool {
        let pred = Arc::new(pred);
        let deadline = Instant::now() + timeout;
        loop {
            let p = pred.clone();
            if self.inspect::<T, bool>(id, move |t| p(t)) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.tick / 4 + Duration::from_micros(100));
        }
    }

    /// Crashes the node: it stops processing messages and timers (they
    /// are lost) until [`Runtime::restart_node`]. Retain mode: in-memory
    /// state survives the restart.
    pub fn crash_node(&self, id: NodeId) {
        self.crash_node_with(id, CrashMode::Retain);
    }

    /// Crashes the node with an explicit [`CrashMode`]: after an
    /// `Amnesia` crash the restart discards all volatile state and
    /// rebuilds the automaton from its durable store (via
    /// `Automaton::restore_state`). Pending timers are purged in both
    /// modes — they are volatile state.
    pub fn crash_node_with(&self, id: NodeId, mode: CrashMode) {
        let _ = self.senders[id.0].send(Event::Crash(mode));
    }

    /// Restarts a crashed node: with its retained state after a retain
    /// crash, from its durable store after an amnesia crash.
    pub fn restart_node(&self, id: NodeId) {
        let _ = self.senders[id.0].send(Event::Restart);
    }

    /// Replaces the automaton at `id` (Byzantine behaviour injection).
    /// The new automaton's `on_start` is *not* called.
    pub fn swap_node(&self, id: NodeId, node: Box<dyn Automaton<M> + Send>) {
        let _ = self.senders[id.0].send(Event::Replace(node));
    }

    /// Envelope/item counts since start.
    pub fn message_stats(&self) -> SubstrateStats {
        match &self.net {
            Some(net) => SubstrateStats {
                envelopes: net.counters.envelopes.load(Ordering::Relaxed),
                items: net.counters.items.load(Ordering::Relaxed),
            },
            None => SubstrateStats::default(),
        }
    }

    /// Elapsed wall-clock since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The tick length in use.
    pub fn tick_len(&self) -> Duration {
        self.tick
    }

    /// The await timeout used by generic substrate awaits.
    pub fn op_timeout(&self) -> Duration {
        self.op_timeout
    }
}

impl<M: Send + 'static> Runtime<M> {
    /// Stops all threads.
    pub fn shutdown(&mut self) {
        *self.wheel.shutdown.lock() = true;
        self.wheel.cv.notify_one();
        self.latch.close();
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.fault_thread.take() {
            let _ = t.join();
        }
        // Dropping the last NetOut (ours; node threads are gone) closes
        // the interposer's inbound channel and ends its loop.
        self.net = None;
        if let Some(t) = self.interposer_thread.take() {
            let _ = t.join();
        }
    }
}

impl<M: Send + 'static> Drop for Runtime<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: Send + Clone + 'static> Substrate<M> for Runtime<M> {
    const NAME: &'static str = "threaded";
    const DETERMINISTIC: bool = false;

    fn build(config: SubstrateConfig<M>) -> Self {
        let mut builder = RuntimeBuilder::new()
            .tick(config.tick)
            .op_timeout(config.op_timeout)
            .scenario(config.scenario)
            .sizer(config.sizer)
            .tracer(config.tracer);
        for node in config.nodes {
            builder = builder.node(node);
        }
        builder.start()
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        Runtime::send(self, from, to, msg);
    }

    fn invoke_on<T: 'static>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<M>) + Send + 'static,
    ) {
        self.invoke::<T>(id, f);
    }

    fn inspect_on<T: 'static, R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl Fn(&T) -> R + Send + Sync + 'static,
    ) -> R {
        self.inspect::<T, R>(id, f)
    }

    fn await_on<T: 'static>(
        &mut self,
        id: NodeId,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
        _max_steps: usize,
    ) -> bool {
        self.wait_for::<T>(id, pred, self.op_timeout)
    }

    fn crash(&mut self, id: NodeId) {
        self.crash_node(id);
    }

    fn crash_with(&mut self, id: NodeId, mode: CrashMode) {
        self.crash_node_with(id, mode);
    }

    fn restart(&mut self, id: NodeId) {
        self.restart_node(id);
    }

    fn replace_node(&mut self, id: NodeId, node: Box<dyn Automaton<M> + Send>) {
        self.swap_node(id, node);
    }

    fn stats(&self) -> SubstrateStats {
        self.message_stats()
    }

    fn now_ticks(&self) -> Time {
        Time(started_ticks(self.started, self.tick))
    }

    fn elapsed_units(&self) -> u64 {
        (self.started.elapsed().as_micros() as u64).max(1)
    }

    fn shutdown(&mut self) {
        Runtime::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_sim::{LinkEffect, LinkRule, Selector};
    use std::any::Any;

    #[derive(Default)]
    struct Echo {
        got: Vec<u32>,
    }

    impl Automaton<u32> for Echo {
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.got.push(msg);
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_across_threads() {
        let mut rt = RuntimeBuilder::new()
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.send(NodeId(0), NodeId(1), 4);
        let done = rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| e.got.iter().sum::<u32>() >= (4 + 2),
            Duration::from_secs(5),
        );
        assert!(done, "ping-pong should converge");
        let got0 = rt.inspect::<Echo, Vec<u32>>(NodeId(0), |e| e.got.clone());
        assert_eq!(got0, vec![3, 1]);
        // 1 injected + 4 replies
        assert_eq!(rt.message_stats().envelopes, 5);
        rt.shutdown();
    }

    #[derive(Default)]
    struct TimerUser {
        fired: usize,
    }

    impl Automaton<u32> for TimerUser {
        fn on_message(&mut self, _f: NodeId, _m: u32, ctx: &mut Context<u32>) {
            ctx.set_timer(2);
        }
        fn on_timer(&mut self, _t: TimerToken, _ctx: &mut Context<u32>) {
            self.fired += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_real_time() {
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .node(Box::new(TimerUser::default()))
            .start();
        rt.send(NodeId(0), NodeId(0), 0);
        let ok = rt.wait_for::<TimerUser>(
            NodeId(0),
            |t: &TimerUser| t.fired >= 1,
            Duration::from_secs(5),
        );
        assert!(ok);
        rt.shutdown();
    }

    #[test]
    fn invoke_runs_on_node_thread() {
        let mut rt = RuntimeBuilder::new()
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.invoke::<Echo>(NodeId(0), |_e, ctx| ctx.send(NodeId(1), 0));
        let ok = rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_secs(5),
        );
        assert!(ok);
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut rt: Runtime<u32> = RuntimeBuilder::new()
            .node(Box::new(Echo::default()))
            .start();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }

    #[test]
    fn crash_drops_messages_restart_resumes() {
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.crash_node(NodeId(1));
        rt.send(NodeId(0), NodeId(1), 0);
        assert!(!rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_millis(100),
        ));
        rt.restart_node(NodeId(1));
        rt.send(NodeId(0), NodeId(1), 0);
        assert!(rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_secs(5),
        ));
        rt.shutdown();
    }

    /// Remembers messages volatilely and arms a long timer on each one;
    /// restore_state simulates rebuilding from an empty durable store.
    #[derive(Default)]
    struct Volatile {
        got: Vec<u32>,
        fired: usize,
        restores: usize,
    }

    impl Automaton<u32> for Volatile {
        fn on_message(&mut self, _f: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.got.push(msg);
            ctx.set_timer(50);
        }
        fn on_timer(&mut self, _t: TimerToken, _ctx: &mut Context<u32>) {
            self.fired += 1;
        }
        fn restore_state(&mut self) -> usize {
            self.got.clear();
            self.restores += 1;
            0
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn amnesia_crash_restores_from_store_and_purges_timers() {
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .node(Box::new(Volatile::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.send(NodeId(1), NodeId(0), 5);
        assert!(rt.wait_for::<Volatile>(
            NodeId(0),
            |v: &Volatile| !v.got.is_empty(),
            Duration::from_secs(5),
        ));
        // Amnesia-crash before the 50-tick timer fires, then restart.
        rt.crash_node_with(NodeId(0), CrashMode::Amnesia);
        rt.restart_node(NodeId(0));
        assert!(rt.wait_for::<Volatile>(
            NodeId(0),
            |v: &Volatile| v.restores == 1,
            Duration::from_secs(5),
        ));
        let (got, fired) = rt.inspect::<Volatile, _>(NodeId(0), |v| (v.got.clone(), v.fired));
        assert!(got.is_empty(), "amnesia restart must drop volatile state");
        assert_eq!(fired, 0);
        // Wait past the old timer's due point: it was purged at crash.
        std::thread::sleep(Duration::from_millis(80));
        let fired = rt.inspect::<Volatile, usize>(NodeId(0), |v| v.fired);
        assert_eq!(fired, 0, "pre-crash timer must not fire after restart");
        rt.shutdown();
    }

    /// A node that swallows everything (Byzantine-mute stand-in).
    #[derive(Default)]
    struct Mute;

    impl Automaton<u32> for Mute {
        fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Context<u32>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn swap_node_changes_behaviour() {
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.swap_node(NodeId(1), Box::new(Mute));
        rt.send(NodeId(0), NodeId(1), 3);
        // The mute replacement never replies, so node 0 sees nothing.
        assert!(!rt.wait_for::<Echo>(
            NodeId(0),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_millis(100),
        ));
        rt.shutdown();
    }

    #[test]
    fn scenario_partition_drops_then_heals() {
        let scenario = Scenario::named("cut").link(
            LinkRule::every(LinkEffect::Drop)
                .to(Selector::Is(NodeId(1)))
                .during(0, 50),
        );
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .scenario(scenario)
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        rt.send(NodeId(0), NodeId(1), 0);
        assert!(!rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_millis(20),
        ));
        // After tick 50 (= 50 ms) the partition heals.
        std::thread::sleep(Duration::from_millis(60));
        rt.send(NodeId(0), NodeId(1), 7);
        assert!(rt.wait_for::<Echo>(
            NodeId(1),
            // The partitioned-away 0 stays lost; the post-heal 7 arrives.
            |e: &Echo| e.got.first() == Some(&7),
            Duration::from_secs(5),
        ));
        rt.shutdown();
    }

    #[test]
    fn scenario_duplicate_delivers_twice() {
        let scenario =
            Scenario::named("dup").link(LinkRule::every(LinkEffect::Duplicate { lag: 2 }));
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .scenario(scenario)
            .node(Box::new(Echo::default()))
            .node(Box::new(Mute))
            .start();
        rt.send(NodeId(0), NodeId(0), 0);
        assert!(rt.wait_for::<Echo>(
            NodeId(0),
            |e: &Echo| e.got.len() >= 2,
            Duration::from_secs(5),
        ));
        rt.shutdown();
    }

    #[test]
    fn scenario_crash_plan_fires_on_schedule() {
        let scenario = Scenario::named("cr").crash_restart(1, 0, 40);
        let mut rt = RuntimeBuilder::new()
            .tick(Duration::from_millis(1))
            .scenario(scenario)
            .node(Box::new(Echo::default()))
            .node(Box::new(Echo::default()))
            .start();
        // Give the scheduler a beat to crash node 1 at tick 0.
        std::thread::sleep(Duration::from_millis(10));
        rt.send(NodeId(0), NodeId(1), 0);
        assert!(!rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_millis(15),
        ));
        // After the restart at tick 40 the node processes again.
        std::thread::sleep(Duration::from_millis(50));
        rt.send(NodeId(0), NodeId(1), 0);
        assert!(rt.wait_for::<Echo>(
            NodeId(1),
            |e: &Echo| !e.got.is_empty(),
            Duration::from_secs(5),
        ));
        rt.shutdown();
    }

    #[test]
    fn substrate_trait_drives_runtime() {
        let nodes: Vec<Box<dyn Automaton<u32> + Send>> =
            vec![Box::new(Echo::default()), Box::new(Echo::default())];
        let cfg = SubstrateConfig::new(nodes).tick(Duration::from_millis(1));
        let mut sub: Runtime<u32> = Substrate::build(cfg);
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 4);
        assert!(sub.await_on::<Echo>(NodeId(1), |e| e.got.len() >= 3, 0));
        assert_eq!(<Runtime<u32> as Substrate<u32>>::NAME, "threaded");
        assert!(Substrate::stats(&sub).envelopes >= 5);
        Substrate::shutdown(&mut sub);
    }
}
